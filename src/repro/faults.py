"""Deterministic fault injection and supervision primitives.

The paper's method is built to survive noisy measurement: counter reads
jitter, so the protocol takes medians over repeated runs and regression
absorbs what remains (§5.5).  This module extends that stance from
*noise* to *failure*: an injectable, seeded :class:`FaultPlan` can make
counter reads raise, return garbled values, or stall; make campaign
workers crash; and tear store files mid-write — while the supervision
layer (read-level re-reads, campaign-level retries with exponential
backoff, parallel→serial degradation, cache quarantine) keeps every
recovered result **bit-identical** to a fault-free run, because each
measurement is a pure function of (machine seed, benchmark, layout
index).

Usage::

    from repro import faults
    from repro.faults import FaultPlan

    with faults.injected(FaultPlan(seed=7, flaky_read=0.1)):
        observations = interferometer.observe(benchmark, n_layouts=40)
    # observations are bit-identical to a fault-free campaign

The environment variable ``REPRO_FAULT_PLAN`` installs a plan for the
whole process (e.g. ``REPRO_FAULT_PLAN=flaky`` for the canned flaky
profile, or an explicit ``"seed=7,flaky_read=0.1,torn_write=0.05"``);
the CLI flag ``--fault-plan`` overrides it.  With no plan installed
every hook is a ``None`` check — zero cost on the measurement path.

Every decision is a deterministic function of ``(plan seed, fault
site, site key, occurrence number)``, so a plan reproduces the same
fault schedule on every run, and a *retried* operation draws a fresh
decision (the occurrence number advanced) — exactly how a transient
real-world fault behaves.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import ConfigurationError
from repro.rng import derive_seed

#: Decision resolution: rates are compared against a 32-bit hash slice.
_RESOLUTION = 1 << 32

#: Default campaign retry budget when neither the caller nor
#: ``REPRO_MAX_RETRIES`` says otherwise.
DEFAULT_MAX_RETRIES = 2

#: Canned fault profiles selectable by name (CLI ``--fault-plan`` and
#: the ``REPRO_FAULT_PLAN`` environment variable).  ``flaky`` is the CI
#: smoke profile: ~10% of counter reads fail transiently, which the
#: read-level re-read layer absorbs without any campaign retries.
CANNED_PLANS: dict[str, str] = {
    "flaky": "seed=0xF1A7,flaky_read=0.10",
    "chaos": (
        "seed=0xC405,flaky_read=0.10,garbled_read=0.05,stalled_read=0.02,"
        "torn_write=0.10,worker_crash=0.25"
    ),
    "hung": "seed=0x4A46,worker_hang=0.30,hang_seconds=20",
}

_RATE_FIELDS = (
    "flaky_read",
    "garbled_read",
    "stalled_read",
    "torn_write",
    "worker_crash",
    "worker_hang",
)


@dataclass
class FaultPlan:
    """A seeded, deterministic schedule of injected faults.

    Parameters
    ----------
    seed:
        Root of every fault decision; two plans with equal fields
        produce identical fault schedules.
    flaky_read:
        Probability a counter read raises
        :class:`~repro.errors.TransientMeasurementError`.
    garbled_read:
        Probability a counter read returns detectably impossible values
        (rejected by validation, then re-read).
    stalled_read:
        Probability a counter read stalls past its deadline
        (:class:`~repro.errors.MeasurementTimeout`).
    torn_write:
        Probability a campaign store write is truncated half-way, as if
        the process died mid-write.
    worker_crash:
        Probability a benchmark's campaign crashes when run in a pool
        worker process.  Not occurrence-keyed: under one plan a
        benchmark either always or never crashes in the pool, which
        keeps the parallel→serial degradation path deterministic.
    worker_hang:
        Probability a benchmark's campaign hangs — blocks without
        returning — wherever it executes (pool worker *or* the serial
        supervised path).  Occurrence-keyed, unlike ``worker_crash``:
        from the supervisor's vantage a hang is transient (the retry
        runs on a fresh worker), so a killed-and-retried campaign draws
        a fresh decision.
    crash_benchmarks:
        Benchmarks whose pool-worker campaigns always crash (test hook
        for "exactly this worker dies").
    hang_benchmarks:
        Benchmarks whose campaign hangs on its *first* execution in
        each process (test hook for "exactly this campaign hangs, then
        recovers when the supervisor kills and retries it").
    hard_crash:
        Crash via ``os._exit`` (killing the worker process, so the pool
        breaks) instead of raising
        :class:`~repro.errors.WorkerCrashError`.
    only_benchmarks:
        When non-empty, faults apply only to these benchmarks.
    stall_seconds:
        Real wall-clock stall before a stalled read times out (0 keeps
        tests fast; the timeout is raised either way).
    hang_seconds:
        How long an injected hang blocks before giving up and resuming
        normally.  A stand-in for "forever" that keeps un-deadlined
        runs (and abandoned watchdog threads) bounded: any deadline
        shorter than this sees a genuine never-returning hang, while a
        run with no deadline merely stalls and still completes with
        bit-identical results.
    """

    seed: int = 0xF417
    flaky_read: float = 0.0
    garbled_read: float = 0.0
    stalled_read: float = 0.0
    torn_write: float = 0.0
    worker_crash: float = 0.0
    worker_hang: float = 0.0
    crash_benchmarks: tuple[str, ...] = ()
    hang_benchmarks: tuple[str, ...] = ()
    hard_crash: bool = False
    only_benchmarks: tuple[str, ...] = ()
    stall_seconds: float = 0.0
    hang_seconds: float = 30.0
    #: Per-process occurrence counters; deliberately excluded from
    #: comparison and pickling so workers start a fresh schedule.
    _counts: dict = field(default_factory=dict, repr=False, compare=False)

    def __post_init__(self) -> None:
        for name in _RATE_FIELDS:
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ConfigurationError(
                    f"fault rate {name} must be in [0, 1], got {rate}"
                )
        if self.stall_seconds < 0:
            raise ConfigurationError(
                f"stall_seconds must be >= 0, got {self.stall_seconds}"
            )
        if self.hang_seconds < 0:
            raise ConfigurationError(
                f"hang_seconds must be >= 0, got {self.hang_seconds}"
            )

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["_counts"] = {}
        return state

    # ------------------------------------------------------------------
    # Decisions
    # ------------------------------------------------------------------

    def _decide(self, site: str, key: str, rate: float) -> bool:
        """One deterministic draw for (site, key); retries draw afresh."""
        if rate <= 0.0:
            return False
        n = self._counts.get((site, key), 0)
        self._counts[(site, key)] = n + 1
        digest = derive_seed(self.seed, f"{site}/{key}/{n}")
        return (digest % _RESOLUTION) < rate * _RESOLUTION

    def applies_to(self, benchmark: str | None) -> bool:
        """Whether faults target this benchmark (None = unknown → yes)."""
        if not self.only_benchmarks or benchmark is None:
            return True
        return benchmark in self.only_benchmarks

    def read_fault(self, key: str, benchmark: str | None = None) -> str | None:
        """The fault (if any) afflicting one counter read.

        Returns ``"stall"``, ``"flaky"``, ``"garble"``, or ``None``.
        """
        if not self.applies_to(benchmark):
            return None
        if self._decide("read/stall", key, self.stalled_read):
            return "stall"
        if self._decide("read/flaky", key, self.flaky_read):
            return "flaky"
        if self._decide("read/garble", key, self.garbled_read):
            return "garble"
        return None

    def torn_payload(
        self, payload: str, key: str, benchmark: str | None = None
    ) -> str:
        """Possibly truncate a store payload, as a torn write would."""
        if not self.applies_to(benchmark):
            return payload
        if not self._decide("store/tear", key, self.torn_write):
            return payload
        return payload[: max(1, len(payload) // 2)]

    def crashes_worker(self, benchmark: str) -> bool:
        """Whether this benchmark's campaign dies in a pool worker."""
        if not self.applies_to(benchmark):
            return False
        if benchmark in self.crash_benchmarks:
            return True
        if self.worker_crash <= 0.0:
            return False
        digest = derive_seed(self.seed, f"worker/{benchmark}")
        return (digest % _RESOLUTION) < self.worker_crash * _RESOLUTION

    def hangs_worker(self, benchmark: str) -> bool:
        """Whether this campaign execution hangs (this time).

        Unlike :meth:`crashes_worker` the decision is occurrence-keyed:
        a hang looks transient to the supervisor (the killed campaign
        retries on a fresh worker), so each execution draws afresh.
        Forced ``hang_benchmarks`` hang exactly once per process —
        enough to exercise the watchdog while letting the retried
        attempt recover.
        """
        if not self.applies_to(benchmark):
            return False
        if benchmark in self.hang_benchmarks:
            n = self._counts.get(("worker/hang-forced", benchmark), 0)
            self._counts[("worker/hang-forced", benchmark)] = n + 1
            return n == 0
        return self._decide("worker/hang", benchmark, self.worker_hang)

    # ------------------------------------------------------------------
    # Parsing
    # ------------------------------------------------------------------

    @classmethod
    def from_spec(cls, spec: str) -> "FaultPlan | None":
        """Parse a plan from a spec string.

        Accepts a canned profile name (``flaky``, ``chaos``), the
        literal ``none``/``off``/empty (→ ``None``), or comma-separated
        ``field=value`` pairs, e.g.
        ``"seed=7,flaky_read=0.1,crash_benchmarks=456.hmmer+470.lbm"``.
        Benchmark lists use ``+`` as the separator.
        """
        spec = spec.strip()
        if not spec or spec.lower() in ("none", "off"):
            return None
        spec = CANNED_PLANS.get(spec, spec)
        kwargs: dict[str, object] = {}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            name, sep, value = part.partition("=")
            name, value = name.strip(), value.strip()
            if not sep or not value:
                raise ConfigurationError(
                    f"fault plan entry {part!r} is not of the form field=value"
                )
            if name == "hard_crash":
                kwargs[name] = value.lower() in ("1", "true", "yes", "on")
                continue
            if name in ("crash_benchmarks", "hang_benchmarks", "only_benchmarks"):
                kwargs[name] = tuple(v for v in value.split("+") if v)
                continue
            if (
                name != "seed"
                and name not in _RATE_FIELDS
                and name not in ("stall_seconds", "hang_seconds")
            ):
                raise ConfigurationError(
                    f"unknown fault plan field {name!r}; known fields: "
                    f"seed, {', '.join(_RATE_FIELDS)}, stall_seconds, "
                    f"hang_seconds, hard_crash, crash_benchmarks, "
                    f"hang_benchmarks, only_benchmarks"
                )
            # ConfigurationError is itself a ValueError, so the numeric
            # conversions sit alone in this try to avoid re-wrapping the
            # unknown-field error above.
            try:
                if name == "seed":
                    kwargs[name] = int(value, 0)
                else:
                    kwargs[name] = float(value)
            except ValueError as exc:
                raise ConfigurationError(
                    f"bad value for fault plan field {name!r}: {value!r}"
                ) from exc
        return cls(**kwargs)  # type: ignore[arg-type]


# ----------------------------------------------------------------------
# Active plan: process-wide, env-installable, zero-cost when absent.
# ----------------------------------------------------------------------

_UNSET = object()
_active: object = _UNSET


def active_plan() -> FaultPlan | None:
    """The currently installed plan (``None`` = no faults).

    On first call with nothing installed, ``REPRO_FAULT_PLAN`` is
    consulted once; worker processes therefore pick up the same
    environment plan as the parent.
    """
    global _active
    if _active is _UNSET:
        # repro: allow-DET005 REPRO_FAULT_PLAN is the documented fault-injection channel, read once and cached so every retry sees the same plan
        _active = FaultPlan.from_spec(os.environ.get("REPRO_FAULT_PLAN", ""))
    return _active  # type: ignore[return-value]


def install(plan: FaultPlan | None) -> None:
    """Install *plan* process-wide (``None`` disables injection)."""
    global _active
    _active = plan


def clear() -> None:
    """Forget the installed plan; the env var is re-read on next use."""
    global _active
    _active = _UNSET


@contextmanager
def injected(plan: FaultPlan | None) -> Iterator[FaultPlan | None]:
    """Temporarily install *plan* (tests and scoped injection)."""
    global _active
    prior = _active
    _active = plan
    try:
        yield plan
    finally:
        _active = prior


@contextmanager
def plan_scope(plan: FaultPlan | None) -> Iterator[None]:
    """Install *plan* if given, else leave the current plan in place.

    Worker entry points use this: a pickled plan travelling with the
    campaign spec takes precedence, while ``None`` keeps whatever the
    worker inherited (e.g. an environment plan).
    """
    if plan is None:
        yield
        return
    with injected(plan):
        yield


def hang(seconds: float) -> None:
    """Block like a hung worker would (injection helper).

    A real hang never returns; this one gives up after *seconds* (the
    plan's ``hang_seconds``) so that runs without a deadline — and the
    daemon watchdog threads that outlive a killed campaign — stay
    bounded.  Any deadline shorter than *seconds* observes a genuine
    hang: the supervisor fires first.
    """
    if seconds > 0:
        time.sleep(seconds)


# ----------------------------------------------------------------------
# Supervision: retry policy and the structured failure report.
# ----------------------------------------------------------------------


def max_retries_from_env(default: int = DEFAULT_MAX_RETRIES) -> int:
    """The campaign retry budget from ``REPRO_MAX_RETRIES`` (or *default*)."""
    # repro: allow-DET005 retry budget is configuration resolved once at RetryPolicy construction, never per-measurement
    raw = os.environ.get("REPRO_MAX_RETRIES")
    if raw is None:
        return default
    try:
        value = int(raw)
    except ValueError:
        raise ConfigurationError(
            f"REPRO_MAX_RETRIES must be an integer, got {raw!r}"
        ) from None
    if value < 0:
        raise ConfigurationError(f"REPRO_MAX_RETRIES must be >= 0, got {value}")
    return value


@dataclass(frozen=True)
class RetryPolicy:
    """Campaign-level retry budget with exponential backoff.

    ``deadline_seconds`` is the per-campaign execution deadline the
    supervision layer enforces (``None`` = unbounded, the historical
    behaviour).  ``jitter`` > 0 switches the schedule to *decorrelated*
    backoff (each delay drawn between ``backoff_base`` and three times
    the previous delay) — but seeded: the draw is a deterministic
    function of ``(jitter_seed, campaign key, attempt)``, so a rerun
    retries on the identical schedule and recovery stays reproducible.
    ``backoff_total_cap`` bounds the *cumulative* backoff one campaign
    may spend sleeping, so a pathological fault schedule cannot stall
    a suite indefinitely.
    """

    max_retries: int = DEFAULT_MAX_RETRIES
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    deadline_seconds: float | None = None
    jitter: float = 0.0
    jitter_seed: int = 0xB0FF
    backoff_total_cap: float = 30.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ConfigurationError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ConfigurationError("backoff parameters must be >= 0")
        if self.deadline_seconds is not None and self.deadline_seconds <= 0:
            raise ConfigurationError(
                f"deadline_seconds must be > 0, got {self.deadline_seconds}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ConfigurationError(
                f"jitter must be in [0, 1], got {self.jitter}"
            )
        if self.backoff_total_cap < 0:
            raise ConfigurationError(
                f"backoff_total_cap must be >= 0, got {self.backoff_total_cap}"
            )

    @classmethod
    def from_env(
        cls,
        max_retries: int | None = None,
        deadline_seconds: float | None = None,
    ) -> "RetryPolicy":
        """A policy with an explicit budget, or the environment's."""
        if max_retries is None:
            max_retries = max_retries_from_env()
        return cls(max_retries=max_retries, deadline_seconds=deadline_seconds)

    def delay(self, attempt: int, key: str = "") -> float:
        """Backoff before retry *attempt* (0-based), capped.

        With ``jitter == 0`` (the default) this is the classic
        ``base * 2^attempt``.  With jitter the schedule is decorrelated
        backoff — ``delay_a = uniform(base, 3 * delay_{a-1})`` — where
        the "uniform" draw is a deterministic hash of
        ``(jitter_seed, key, attempt)`` blended in by the jitter
        fraction, so two campaigns (different *key*) desynchronize
        while a rerun of the same campaign reproduces its schedule.
        """
        if attempt < 0:
            raise ConfigurationError(f"attempt must be >= 0, got {attempt}")
        if self.jitter <= 0.0:
            return min(self.backoff_cap, self.backoff_base * (2.0 ** attempt))
        delay = self.backoff_base
        for a in range(attempt + 1):
            digest = derive_seed(self.jitter_seed, f"backoff/{key}/{a}")
            fraction = (digest % _RESOLUTION) / _RESOLUTION
            spread = max(3.0 * delay - self.backoff_base, 0.0)
            drawn = self.backoff_base + fraction * spread
            exponential = self.backoff_base * (2.0 ** a)
            delay = min(
                self.backoff_cap,
                (1.0 - self.jitter) * exponential + self.jitter * drawn,
            )
        return delay

    def sleep(
        self, attempt: int, key: str = "", already_slept: float = 0.0
    ) -> float:
        """Sleep out the backoff for retry *attempt*; returns seconds slept.

        The delay is clipped so one campaign's cumulative backoff
        (``already_slept`` plus this sleep) never exceeds
        ``backoff_total_cap``; callers thread the running total through.
        """
        delay = self.delay(attempt, key)
        budget = max(self.backoff_total_cap - already_slept, 0.0)
        delay = min(delay, budget)
        if delay > 0:
            time.sleep(delay)
        return delay


@dataclass(frozen=True)
class CampaignIncident:
    """One campaign that needed intervention (or got none that worked)."""

    benchmark: str
    #: ``recovered`` (succeeded after retries), ``degraded`` (pool worker
    #: failed; re-run serially), ``timed_out`` (deadline expired; the
    #: execution was killed and the campaign re-run under the retry
    #: budget), or ``failed`` (retry budget exhausted).
    status: str
    attempts: int
    error: str
    heap: bool = False

    def render(self) -> str:
        """One report line."""
        kind = " (heap)" if self.heap else ""
        return (
            f"{self.status.upper():>9} {self.benchmark}{kind}: "
            f"{self.attempts} attempt(s); {self.error}"
        )


@dataclass
class FailureReport:
    """Structured account of every retried/degraded/failed campaign.

    A suite run completes and reports rather than dying on the first
    fault; ``ok`` is False only when some campaign produced no data.
    ``breaker_tripped`` records why (and that) the worker-pool circuit
    breaker degraded the remainder of a suite to serial execution.
    """

    incidents: list[CampaignIncident] = field(default_factory=list)
    breaker_tripped: str | None = None

    def record(
        self,
        benchmark: str,
        status: str,
        attempts: int,
        error: str,
        heap: bool = False,
    ) -> CampaignIncident:
        """Append one incident."""
        if status not in ("recovered", "degraded", "timed_out", "failed"):
            raise ConfigurationError(f"unknown incident status {status!r}")
        incident = CampaignIncident(
            benchmark=benchmark,
            status=status,
            attempts=attempts,
            error=error,
            heap=heap,
        )
        self.incidents.append(incident)
        return incident

    def _with_status(self, status: str) -> list[CampaignIncident]:
        return [i for i in self.incidents if i.status == status]

    @property
    def recovered(self) -> list[CampaignIncident]:
        """Campaigns that succeeded after one or more retries."""
        return self._with_status("recovered")

    @property
    def degraded(self) -> list[CampaignIncident]:
        """Campaigns re-run serially after their pool worker failed."""
        return self._with_status("degraded")

    @property
    def timed_out(self) -> list[CampaignIncident]:
        """Deadline expiries (one incident per killed execution)."""
        return self._with_status("timed_out")

    @property
    def failed(self) -> list[CampaignIncident]:
        """Campaigns that produced no data despite the full budget."""
        return self._with_status("failed")

    def trip_breaker(self, reason: str) -> None:
        """Record that the worker-pool circuit breaker tripped."""
        self.breaker_tripped = reason

    @property
    def ok(self) -> bool:
        """True when every campaign ultimately produced data."""
        return not self.failed

    def __bool__(self) -> bool:
        return bool(self.incidents) or self.breaker_tripped is not None

    def one_line(self) -> str:
        """Compact summary for exception messages and log lines."""
        summary = (
            f"{len(self.recovered)} recovered, {len(self.degraded)} degraded, "
            f"{len(self.failed)} failed"
        )
        if self.timed_out:
            summary += f", {len(self.timed_out)} timed out"
        return summary

    def render(self) -> str:
        """Multi-line report for CLI output."""
        lines = [f"failure report: {self.one_line()}"]
        if self.breaker_tripped is not None:
            lines.append(f"  circuit breaker TRIPPED: {self.breaker_tripped}")
        lines.extend(f"  {incident.render()}" for incident in self.incidents)
        return "\n".join(lines)
