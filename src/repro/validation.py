"""Installation self-check: fast invariant verification.

``repro-interferometry --selftest`` (or :func:`run_selftest`) runs a
battery of quick checks covering the invariants the whole reproduction
rests on.  Each check is independent and reports pass/fail with a
detail string; the battery is designed to finish in a few seconds so it
can gate CI or a fresh install.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np


@dataclass(frozen=True)
class CheckResult:
    """One self-check's outcome."""

    name: str
    passed: bool
    detail: str


def _check_trace_determinism() -> str:
    from repro.workloads.suite import get_benchmark
    from repro.program.tracegen import generate_trace

    benchmark = get_benchmark("456.hmmer")
    a = generate_trace(benchmark.spec, benchmark.trace_seed, 1500)
    b = generate_trace(benchmark.spec, benchmark.trace_seed, 1500)
    assert (a.outcomes == b.outcomes).all(), "trace outcomes not deterministic"
    return f"{a.n_events} events reproduced bit-identically"


def _check_layout_invariance() -> str:
    from repro.toolchain.camino import Camino
    from repro.workloads.suite import get_benchmark

    benchmark = get_benchmark("456.hmmer")
    trace = benchmark.trace(1500)
    camino = Camino()
    instrs = {
        camino.build(benchmark.spec, trace, layout_seed=seed).n_instructions
        for seed in range(4)
    }
    assert len(instrs) == 1, f"instruction counts differ across layouts: {instrs}"
    return f"4 layouts all retire {instrs.pop()} instructions"


def _check_predictor_ordering() -> str:
    from repro.toolchain.camino import Camino
    from repro.uarch.predictors.hybrid import HybridPredictor
    from repro.uarch.predictors.perfect import PerfectPredictor
    from repro.uarch.predictors.static import AlwaysTakenPredictor
    from repro.workloads.suite import get_benchmark

    benchmark = get_benchmark("445.gobmk")
    trace = benchmark.trace(2000)
    exe = Camino().build(benchmark.spec, trace, layout_seed=0)
    addresses = exe.branch_address_stream()
    outcomes = exe.trace.outcomes
    perfect = PerfectPredictor().simulate(addresses, outcomes)
    hybrid = HybridPredictor(2048, 4096, 8, 2048).simulate(addresses, outcomes)
    static = AlwaysTakenPredictor().simulate(addresses, outcomes)
    assert perfect == 0, "perfect predictor mispredicted"
    assert perfect < hybrid < static, (
        f"ordering violated: perfect={perfect}, hybrid={hybrid}, static={static}"
    )
    return f"perfect 0 < hybrid {hybrid} < static {static} mispredictions"


def _check_regression_against_scipy() -> str:
    from scipy import stats as scipy_stats

    from repro.stats.hypothesis_tests import t_test_correlation
    from repro.stats.regression import fit_simple

    rng = np.random.default_rng(0)
    x = rng.uniform(0, 10, 50)
    y = 2.0 * x + 1.0 + rng.normal(0, 0.5, 50)
    ours = fit_simple(x, y)
    theirs = scipy_stats.linregress(x, y)
    assert abs(ours.slope - theirs.slope) < 1e-9, "slope mismatch vs scipy"
    assert abs(ours.intercept - theirs.intercept) < 1e-9, "intercept mismatch"
    p_ours = t_test_correlation(x, y).p_value
    assert abs(p_ours - theirs.pvalue) < 1e-9, "p-value mismatch vs scipy"
    return f"slope/intercept/p agree with scipy to 1e-9"


def _check_measurement_protocol() -> str:
    from repro.machine.pmc import measure_executable
    from repro.machine.system import XeonE5440
    from repro.toolchain.camino import Camino
    from repro.workloads.suite import get_benchmark

    benchmark = get_benchmark("456.hmmer")
    trace = benchmark.trace(1500)
    machine = XeonE5440(seed=1)
    exe = Camino().build(benchmark.spec, trace, layout_seed=0)
    a = measure_executable(machine, exe)
    b = measure_executable(machine, exe)
    assert dict(a.counters) == dict(b.counters), "measurement not reproducible"
    assert a.cpi > 0 and a.mpki >= 0, "nonsensical derived metrics"
    return f"median-of-5 protocol reproducible (CPI {a.cpi:.3f})"


def _check_interferometry_signal() -> str:
    from repro.core.interferometer import Interferometer
    from repro.core.model import PerformanceModel
    from repro.machine.system import XeonE5440
    from repro.workloads.suite import get_benchmark

    machine = XeonE5440(seed=1)
    interferometer = Interferometer(machine, trace_events=4000)
    observations = interferometer.observe(get_benchmark("445.gobmk"), n_layouts=8)
    model = PerformanceModel.from_observations(observations)
    assert model.slope > 0, f"negative misprediction cost: {model.slope}"
    assert model.is_significant(), "no significant CPI/MPKI correlation"
    return (
        f"gobmk: slope {model.slope:.4f}, r {model.r:.2f}, "
        f"p {model.significance().p_value:.1e}"
    )


#: The battery, in dependency-ish order.
CHECKS: dict[str, Callable[[], str]] = {
    "trace-determinism": _check_trace_determinism,
    "layout-invariance": _check_layout_invariance,
    "predictor-ordering": _check_predictor_ordering,
    "stats-vs-scipy": _check_regression_against_scipy,
    "measurement-protocol": _check_measurement_protocol,
    "interferometry-signal": _check_interferometry_signal,
}


def run_selftest() -> list[CheckResult]:
    """Run every check; never raises — failures are reported as results."""
    results = []
    for name, check in CHECKS.items():
        try:
            detail = check()
            results.append(CheckResult(name=name, passed=True, detail=detail))
        except Exception as exc:  # noqa: BLE001 - report, don't crash
            results.append(CheckResult(name=name, passed=False, detail=str(exc)))
    return results


def render_selftest(results: list[CheckResult]) -> str:
    """Human-readable report."""
    lines = ["self-test:"]
    for result in results:
        mark = "ok  " if result.passed else "FAIL"
        lines.append(f"  [{mark}] {result.name}: {result.detail}")
    n_failed = sum(1 for r in results if not r.passed)
    lines.append(
        f"{len(results) - n_failed}/{len(results)} checks passed"
        + ("" if n_failed == 0 else " — INSTALLATION BROKEN")
    )
    return "\n".join(lines)
