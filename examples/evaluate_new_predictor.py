#!/usr/bin/env python3
"""Evaluate hypothetical branch predictors for an existing machine (§7).

The scenario the paper's conclusion motivates: a design team wants to
know what replacing the Xeon's predictor would buy *on the Xeon*,
before spending design effort.  Interferometry provides the per-program
CPI-vs-MPKI model from counter measurements; a Pin-style functional
simulation provides each candidate's MPKI on the same executables; the
model converts MPKI into predicted CPI with prediction intervals.

Candidates here: the paper's GAs budget sweep, L-TAGE, and — as an
extension beyond the paper — a perceptron predictor.

Run:  python examples/evaluate_new_predictor.py
"""

from repro import (
    Interferometer,
    LTagePredictor,
    PerceptronPredictor,
    PredictorEvaluator,
    XeonE5440,
    get_benchmark,
)
from repro.uarch.predictors.gas import gas_hybrid_family

BENCHMARKS = ("400.perlbench", "445.gobmk", "462.libquantum")


def main() -> None:
    machine = XeonE5440(seed=1)
    interferometer = Interferometer(machine, trace_events=10000)

    candidates = gas_hybrid_family() + [
        LTagePredictor(),
        PerceptronPredictor(entries=1024, history_bits=12, name="perceptron"),
    ]
    evaluator = PredictorEvaluator(interferometer, candidates)

    for name in BENCHMARKS:
        benchmark = get_benchmark(name)
        observations = interferometer.observe(benchmark, n_layouts=20)
        evaluation = evaluator.evaluate(benchmark, observations)

        print(f"\n{name}: real predictor "
              f"MPKI {evaluation.real_mean_mpki:.2f}, "
              f"CPI {evaluation.real_mean_cpi:.3f} "
              f"± {evaluation.real_cpi_confidence.half_width:.3f} (95% CI)")
        print(f"  {'candidate':<12} {'MPKI':>6}  {'pred. CPI':>22}  {'vs real':>8}")
        for outcome in sorted(evaluation.outcomes, key=lambda o: o.mean_mpki):
            pred = outcome.predicted_cpi
            delta = evaluation.predicted_improvement_percent(outcome.predictor)
            print(f"  {outcome.predictor:<12} {outcome.mean_mpki:>6.2f}  "
                  f"{pred.mean:>7.3f} [{pred.prediction.low:.3f}, "
                  f"{pred.prediction.high:.3f}]  {delta:>+7.1f}%")
        perfect = evaluation.model.perfect_event_prediction()
        print(f"  {'(perfect)':<12} {0.0:>6.2f}  "
              f"{perfect.mean:>7.3f} [{perfect.prediction.low:.3f}, "
              f"{perfect.prediction.high:.3f}]")


if __name__ == "__main__":
    main()
