#!/usr/bin/env python3
"""Turning interferometry inside out: optimize code placement (§2.2).

The same mechanism interferometry *measures* — layout-dependent
collisions in the predictor tables — can be *exploited*: search for a
procedure/object-file order that steers hot branches away from
conflicts (Pettis & Hansen; Jiménez, PLDI 2005; Knights et al.).

This example:

1. samples random layouts of 445.gobmk and measures their CPI spread,
2. applies the Pettis-Hansen-style hot-grouping heuristic,
3. hill-climbs with the conflict-avoiding placer (scored by simulating
   the machine's own predictor), and
4. shows where the optimized layout lands in the random-layout
   distribution — and why widely deployed placement optimization would
   shrink the variance interferometry feeds on (§2.2).

Run:  python examples/code_placement.py
"""

import numpy as np

from repro import Camino, Counter, XeonE5440, get_benchmark, measure_executable
from repro.toolchain.placement import ConflictAvoidingPlacer, hot_grouping_order


def _measure_layout(machine, camino, benchmark, trace, object_files):
    exe = camino.build_custom(benchmark.spec, trace, list(object_files))
    return measure_executable(machine, exe, events=[Counter.BRANCH_MISPREDICTS])


def main() -> None:
    machine = XeonE5440(seed=1)
    camino = Camino()
    benchmark = get_benchmark("445.gobmk")
    trace = benchmark.trace(10000)

    print(f"benchmark: {benchmark.name}")
    n = 25
    print(f"\n1) measuring {n} random layouts...")
    random_cpis = []
    random_mpkis = []
    for seed in range(n):
        exe = camino.build(benchmark.spec, trace, layout_seed=seed)
        m = measure_executable(machine, exe, events=[Counter.BRANCH_MISPREDICTS])
        random_cpis.append(m.cpi)
        random_mpkis.append(m.mpki)
    random_cpis = np.array(random_cpis)
    random_mpkis = np.array(random_mpkis)
    print(f"   CPI  {random_cpis.mean():.4f} ± {random_cpis.std():.4f} "
          f"(range {random_cpis.min():.4f} .. {random_cpis.max():.4f})")
    print(f"   MPKI {random_mpkis.mean():.2f} ± {random_mpkis.std():.2f}")

    print("\n2) Pettis-Hansen-style hot grouping...")
    hot = hot_grouping_order(benchmark.spec, trace)
    m_hot = _measure_layout(machine, camino, benchmark, trace, hot)
    print(f"   CPI {m_hot.cpi:.4f}, MPKI {m_hot.mpki:.2f}")

    print("\n3) conflict-avoiding hill-climb (scoring = simulate the "
          "machine's own predictor)...")
    placer = ConflictAvoidingPlacer()
    result = placer.optimize(
        benchmark.spec, trace, iterations=120, seed=7, start=hot
    )
    print(f"   search: {result.accepted_moves} accepted moves, score "
          f"{result.initial_score} -> {result.final_score} "
          f"({result.improvement_percent:.1f}% fewer mispredictions)")
    m_opt = _measure_layout(
        machine, camino, benchmark, trace, list(result.object_files)
    )
    print(f"   CPI {m_opt.cpi:.4f}, MPKI {m_opt.mpki:.2f}")

    beaten = float((random_cpis > m_opt.cpi).mean()) * 100
    print(f"\n4) the optimized layout beats {beaten:.0f}% of random layouts.")
    print("   If compilers shipped such placements by default, the violin "
          "of Figure 1 would\n   collapse toward this point — and program "
          "interferometry would lose its signal (§2.2).")


if __name__ == "__main__":
    main()
