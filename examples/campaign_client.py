#!/usr/bin/env python3
"""Campaign-as-a-service: coalescing, store reuse, graceful drain.

ROADMAP item 2 in one file: an in-process `CampaignServer` over a
disk-backed store, queried by asyncio clients.  Six concurrent
requests for the *same* cold campaign coalesce onto one measurement
(all six payloads are byte-identical — a campaign is a pure function
of its content-addressed key); a second server over the same store —
the restart / second-replica scenario — serves the now-warm key from
disk with zero new measurements; and each drain finishes in-flight
work before the server exits.

Run:  python examples/campaign_client.py
(For the subprocess deployment shape, see `repro-cli serve` and
`benchmarks/bench_serve.py`.)
"""

import asyncio
import json
import tempfile
from pathlib import Path

from repro.harness.lab import SCALES, Laboratory
from repro.serve import CampaignServer, CampaignService

BENCHMARK = "429.mcf"
FANOUT = 6


async def fetch(port: int, target: str) -> tuple[int, bytes]:
    """One GET against the local campaign server, no HTTP library."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        writer.write(f"GET {target} HTTP/1.1\r\n\r\n".encode("ascii"))
        await writer.drain()
        status_line = await reader.readline()
        while await reader.readline() not in (b"\r\n", b"\n", b""):
            pass
        body = await reader.read()
        return int(status_line.split()[1]), body
    finally:
        writer.close()
        await writer.wait_closed()


def build_server(cache_dir: Path) -> CampaignServer:
    """Synchronous setup: the laboratory (and the machine behind it) is
    built *before* the event loop runs, so nothing heavy blocks it."""
    lab = Laboratory(scale=SCALES["ci"], machine_seed=1, cache_dir=cache_dir)
    return CampaignServer(CampaignService(lab, max_workers=2), port=0)


async def demo(
    server: CampaignServer, replica: CampaignServer, cache_dir: Path
) -> None:
    await server.start()
    print(f"server up on port {server.port} (scale ci, store {cache_dir})")

    target = f"/campaign?benchmark={BENCHMARK}&layouts=8"
    print(f"\n{FANOUT} concurrent requests for a cold key: {target}")
    responses = await asyncio.gather(
        *[fetch(server.port, target) for _ in range(FANOUT)]
    )
    assert all(status == 200 for status, _ in responses)
    assert len({body for _, body in responses}) == 1, "payloads must match"

    _, metrics_body = await fetch(server.port, "/metrics")
    metrics = json.loads(metrics_body)
    print(f"  -> {metrics['coalesced']} of {FANOUT} coalesced onto one "
          f"measurement; {len(responses[0][1])}-byte identical payloads")
    print(f"  -> store after the burst: {metrics['store']['misses']} miss, "
          f"{metrics['store']['layouts_measured']} layouts measured")

    print("\ndraining (in-flight work finishes, then workers join)...")
    await server.drain()
    print("  -> drained cleanly")

    print("\nsecond server over the same store (a restart, or a replica):")
    await replica.start()
    status, body = await fetch(replica.port, target)
    assert status == 200 and body == responses[0][1], "byte-identical"
    _, metrics_body = await fetch(replica.port, "/metrics")
    store = json.loads(metrics_body)["store"]
    print(f"  -> {store['hits']} store hit, {store['layouts_measured']} new "
          f"layouts measured: the campaign was measured exactly once")
    await replica.drain()
    print("  -> replica drained cleanly")


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="campaign-client-") as tmp:
        cache_dir = Path(tmp)
        server = build_server(cache_dir)
        replica = build_server(cache_dir)
        asyncio.run(demo(server, replica, cache_dir))


if __name__ == "__main__":
    main()
