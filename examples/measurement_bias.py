#!/usr/bin/env python3
"""Measurement bias, and how interferometry defuses it (§2.1).

Mytkowicz et al. showed that a "harmless" experimental detail — link
order — can produce speedups researchers then misattribute to their own
optimization.  This example stages that trap:

* A researcher benchmarks a (completely ineffective) "optimization"
  against a baseline, each compiled once.  The two builds get different
  layouts, and the measured difference looks like a real speedup.
* The interferometric methodology instead samples many layouts of BOTH
  versions; the layout-induced spread swallows the phantom effect.

Run:  python examples/measurement_bias.py
"""

import numpy as np

from repro import Camino, Counter, XeonE5440, get_benchmark, measure_executable


def main() -> None:
    machine = XeonE5440(seed=1)
    camino = Camino()
    benchmark = get_benchmark("445.gobmk")
    trace = benchmark.trace(10000)

    # "Baseline" and "optimized" builds are semantically identical —
    # the optimization does nothing — but each is linked once, with a
    # different (arbitrary) object-file order.
    baseline = camino.build(benchmark.spec, trace, layout_seed=1001)
    optimized = camino.build(benchmark.spec, trace, layout_seed=2002)

    cpi_base = measure_executable(machine, baseline, events=[Counter.BRANCHES]).cpi
    cpi_opt = measure_executable(machine, optimized, events=[Counter.BRANCHES]).cpi
    phantom = (cpi_base - cpi_opt) / cpi_base * 100

    print("single-layout comparison (the trap):")
    print(f"  baseline CPI  {cpi_base:.4f}")
    print(f"  'optimized'   {cpi_opt:.4f}")
    print(f"  apparent speedup: {phantom:+.2f}%  <- pure layout accident")

    # The honest experiment: sample many layouts of each version.
    n = 20
    base_cpis = np.array(
        [
            measure_executable(
                machine,
                camino.build(benchmark.spec, trace, layout_seed=1000 + i),
                events=[Counter.BRANCHES],
            ).cpi
            for i in range(n)
        ]
    )
    opt_cpis = np.array(
        [
            measure_executable(
                machine,
                camino.build(benchmark.spec, trace, layout_seed=2000 + i),
                events=[Counter.BRANCHES],
            ).cpi
            for i in range(n)
        ]
    )
    print(f"\n{n}-layout comparison (the cure):")
    print(f"  baseline CPI  {base_cpis.mean():.4f} ± {base_cpis.std():.4f}")
    print(f"  'optimized'   {opt_cpis.mean():.4f} ± {opt_cpis.std():.4f}")
    diff = (base_cpis.mean() - opt_cpis.mean()) / base_cpis.mean() * 100
    spread = base_cpis.std() / base_cpis.mean() * 100
    print(f"  mean difference {diff:+.2f}% vs layout-induced spread "
          f"±{spread:.2f}% -> no real effect")
    print("\nprogram interferometry treats that spread as *signal*: each "
          "layout is one telescope\nin the array, and together they resolve "
          "the microarchitecture behind the noise.")


if __name__ == "__main__":
    main()
