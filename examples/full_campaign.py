#!/usr/bin/env python3
"""A production campaign: machine park, persistence, and reporting.

The paper's methodology at operational scale (§5.4-§5.7): a park of
four identically configured machines, each benchmark pinned to one
machine and one core, campaigns run in parallel, raw measurements
archived, and the Table-1-style report built from the archive — so the
expensive measurement step never has to be repeated for re-analysis.

Run:  python examples/full_campaign.py
"""

import tempfile
from pathlib import Path

from repro import (
    PerformanceModel,
    export_observations_csv,
    load_observations,
    save_observations,
)
from repro.core.park import MachinePark

BENCHMARKS = ("400.perlbench", "445.gobmk", "462.libquantum", "470.lbm")


def main() -> None:
    park = MachinePark(n_machines=4, base_seed=1, trace_events=10000)
    print(f"machine park: {park.n_machines} identical machines")
    for name in BENCHMARKS:
        print(f"  {name} -> machine {park.machine_for(name)}")

    print("\nrunning campaigns (2 worker processes)...")
    results = park.observe_suite(BENCHMARKS, n_layouts=16, workers=2)

    archive = Path(tempfile.mkdtemp(prefix="interferometry-"))
    print(f"archiving raw measurements to {archive}/")
    for name, observations in results.items():
        slug = name.replace(".", "_")
        save_observations(observations, archive / f"{slug}.json")
        export_observations_csv(observations, archive / f"{slug}.csv")

    print("\nre-analysis from the archive (no re-measurement):")
    print(f"  {'benchmark':<16} {'slope':>8} {'intercept':>10} "
          f"{'PI @ 0 MPKI':>18} {'significant':>12}")
    for name in BENCHMARKS:
        slug = name.replace(".", "_")
        observations = load_observations(archive / f"{slug}.json")
        try:
            model = PerformanceModel.from_observations(observations)
        except Exception:
            print(f"  {name:<16} {'-':>8} {'-':>10} {'-':>18} {'no variance':>12}")
            continue
        prediction = model.perfect_event_prediction()
        significant = "yes" if model.is_significant() else "no"
        print(f"  {name:<16} {model.slope:>8.4f} {model.intercept:>10.3f} "
              f"[{prediction.prediction.low:.3f}, "
              f"{prediction.prediction.high:.3f}]  {significant:>10}")
    print("\n(470.lbm fails the t-test by design: its branch behaviour "
          "gives interferometry\n nothing to measure — the §4.6 failure mode.)")


if __name__ == "__main__":
    main()
