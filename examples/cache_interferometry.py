#!/usr/bin/env python3
"""Cache interferometry with a randomizing heap allocator (§1.3, Fig. 3).

Code reordering alone barely moves the data caches, so this experiment
adds the DieHard-style allocator: every run places heap objects at
reproducibly random addresses, perturbing which cache sets conflict.
Regressing CPI on L1D / L2 misses then yields a *cache* performance
model for the benchmark — the paper's preview of extending
interferometry beyond branch prediction.

Run:  python examples/cache_interferometry.py
"""

from repro import XeonE5440, get_benchmark, run_cache_interferometry
from repro.core.interferometer import Interferometer


def main() -> None:
    machine = XeonE5440(seed=1)
    benchmark = get_benchmark("454.calculix")

    # Ablation first: code reordering alone.
    code_only = Interferometer(machine, trace_events=10000).observe(
        benchmark, n_layouts=20
    )
    print(f"{benchmark.name} with code reordering only:")
    print(f"  L1D MPKI std: {code_only.series('l1d_mpki').std():.4f}  "
          f"(no heap variance to regress on)")

    # Now with heap randomization.
    result = run_cache_interferometry(
        machine, benchmark, n_layouts=40, trace_events=10000
    )
    print(f"\n{benchmark.name} with heap randomization + code reordering:")
    print(f"  L1D MPKI std: {result.observations.series('l1d_mpki').std():.4f}")

    for label, model in (("L1 data cache", result.l1_model),
                         ("L2 cache", result.l2_model)):
        test = model.significance()
        print(f"\n  ({label})  CPI = {model.slope:.5f} * {model.x_metric} "
              f"+ {model.intercept:.5f}")
        print(f"    r^2 = {model.r_squared:.3f}, p = {test.p_value:.2e} "
              f"({'significant' if test.rejects_null() else 'not significant'})")
        x_mid = float(model.x_values.mean())
        prediction = model.predict(x_mid)
        print(f"    at {model.x_metric} = {x_mid:.2f}: CPI {prediction.mean:.3f}, "
              f"95% PI [{prediction.prediction.low:.3f}, "
              f"{prediction.prediction.high:.3f}]")


if __name__ == "__main__":
    main()
