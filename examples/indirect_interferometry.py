#!/usr/bin/env python3
"""Extending interferometry to a new structure: indirect branches (§8).

The paper closes with "in future work we will extend this technique to
other structures".  This example does exactly that, end to end, for the
indirect-branch target predictor (§4.1 lists it among the
address-hashed structures):

1. build an interpreter-like program with a hot indirect dispatch site,
   using the public program-construction API;
2. run the standard interferometry campaign, additionally counting the
   BR_IND_MISSP event;
3. regress CPI on indirect mispredictions per kilo-instruction;
4. simulate an ITTAGE-style target predictor over the same executables
   and use the model to predict the CPI it would deliver.

Run:  python examples/indirect_interferometry.py
"""

import numpy as np

from repro import Camino, Counter, XeonE5440, measure_executable, units
from repro.core.interferometer import layout_seed
from repro.program.behavior import (
    BiasedBehavior,
    GlobalCorrelatedBehavior,
    IndirectTargetBehavior,
    LoopBehavior,
)
from repro.program.structure import (
    BranchSite,
    ProcedureSpec,
    ProgramSpec,
    SourceFile,
)
from repro.program.tracegen import generate_trace
from repro.stats.hypothesis_tests import t_test_correlation
from repro.stats.intervals import prediction_interval_new_response
from repro.stats.regression import fit_simple
from repro.uarch.predictors.indirect import IttageLitePredictor


def build_interpreter() -> ProgramSpec:
    """A bytecode-interpreter-shaped program: dispatch loops with
    per-opcode handlers, built through the public API."""
    procedures = []
    n_loops = 48  # enough dispatch sites to pressure the target table
    for loop_idx in range(n_loops):
        dispatch = BranchSite(
            name=f"dispatch{loop_idx}",
            offset=48,
            behavior=BiasedBehavior(1.0),
            instr_gap=5,
            target_behavior=IndirectTargetBehavior(
                n_targets=4 + loop_idx % 5,
                repeat_prob=0.2,
                history_weight=0.8,
            ),
        )
        guards = tuple(
            BranchSite(
                name=f"guard{loop_idx}_{i}",
                offset=48 + 56 * (i + 1),
                behavior=(
                    LoopBehavior(trip_count=6)
                    if i == 0
                    else GlobalCorrelatedBehavior(history_bits=(0, 2), noise=0.05)
                    if i == 1
                    else BiasedBehavior(0.93)
                ),
                instr_gap=6,
            )
            for i in range(3)
        )
        procedures.append(
            ProcedureSpec(
                name=f"oploop{loop_idx}",
                sites=(dispatch,) + guards,
                weight=3.0 if loop_idx < 8 else 1.0,
                # Diverse code sizes: uniform procedure sizes would
                # quantize every layout onto the same few target-table
                # slots (a real pathology, but it hides layout effects).
                tail_bytes=16 + (loop_idx * 52) % 224,
            )
        )
    for helper_idx in range(10):
        procedures.append(
            ProcedureSpec(
                name=f"helper{helper_idx}",
                sites=(
                    BranchSite(
                        name=f"h{helper_idx}",
                        offset=32,
                        behavior=BiasedBehavior(0.96),
                        instr_gap=7,
                    ),
                ),
                weight=0.5,
            )
        )
    files = (
        SourceFile(name="interp0.o",
                   procedure_names=tuple(f"oploop{i}" for i in range(0, 16))),
        SourceFile(name="interp1.o",
                   procedure_names=tuple(f"oploop{i}" for i in range(16, 32))),
        SourceFile(name="interp2.o",
                   procedure_names=tuple(f"oploop{i}" for i in range(32, 48))),
        SourceFile(name="runtime.o",
                   procedure_names=tuple(f"helper{i}" for i in range(10))),
    )
    return ProgramSpec(
        name="pyterp", procedures=tuple(procedures), files=files,
        intrinsic_cpi=0.5,
    )


def main() -> None:
    spec = build_interpreter()
    trace = generate_trace(spec, seed=99, n_events=12000)
    machine = XeonE5440(seed=1)
    camino = Camino()
    warmup = int(trace.n_events * machine.config.warmup_fraction)

    print(f"program: {spec.name} — {spec.n_sites} sites, "
          f"{int((trace.targets >= 0).sum())} dynamic indirect branches")

    n_layouts = 30
    cpis, ind_mpkis, ittage_mpkis = [], [], []
    ittage = IttageLitePredictor(entries=2048)
    for i in range(n_layouts):
        exe = camino.build(spec, trace, layout_seed=layout_seed(spec.name, i))
        m = measure_executable(
            machine, exe,
            events=[Counter.INDIRECT_MISPREDICTS, Counter.BRANCH_MISPREDICTS],
        )
        cpis.append(m.cpi)
        ind_mpkis.append(m.per_kilo_instruction(Counter.INDIRECT_MISPREDICTS))
        misses = ittage.simulate(
            exe.branch_address_stream(), exe.trace.targets, warmup=warmup
        )
        ittage_mpkis.append(units.mpki(misses, m.instructions))
    cpis = np.array(cpis)
    ind_mpkis = np.array(ind_mpkis)

    print(f"\ncampaign over {n_layouts} layouts:")
    print(f"  CPI {cpis.mean():.3f} ± {cpis.std():.3f}")
    print(f"  indirect misses/kinstr {ind_mpkis.mean():.2f} ± {ind_mpkis.std():.2f}")

    fit = fit_simple(ind_mpkis, cpis)
    test = t_test_correlation(ind_mpkis, cpis)
    print(f"\nmodel: CPI = {fit.slope:.5f} * indirect-MPKI + {fit.intercept:.5f}")
    print(f"  r^2 = {fit.r_squared:.3f}, p = {test.p_value:.2e} "
          f"({'significant' if test.rejects_null() else 'not significant'})")

    ittage_mean = float(np.mean(ittage_mpkis))
    prediction = prediction_interval_new_response(fit, ittage_mean)
    improvement = (cpis.mean() - prediction.center) / cpis.mean() * 100
    print(f"\ncandidate: ITTAGE-lite target predictor — {ittage_mean:.2f} "
          f"indirect-MPKI (machine's last-target BTB: {ind_mpkis.mean():.2f})")
    print(f"  predicted CPI {prediction.center:.3f} "
          f"[{prediction.low:.3f}, {prediction.high:.3f}] — "
          f"{improvement:+.1f}% vs the shipped machine")
    if improvement < 0:
        print("  verdict: on this workload the candidate LOSES — its short "
              "target history\n  cannot track 48 interleaved dispatch sites. "
              "Exactly the kind of negative\n  result §7.2.3 wants settled "
              "*before* spending design effort on silicon.")
    else:
        print("  verdict: the candidate pays for itself on this workload.")
    print("\nThe §8 recipe generalizes: any address-hashed structure whose "
          "adverse events a\ncounter exposes can be modeled the same way.")


if __name__ == "__main__":
    main()
