#!/usr/bin/env python3
"""Quickstart: build a branch-prediction performance model for one benchmark.

This walks the paper's core loop end to end:

1. take a benchmark (a synthetic stand-in for 400.perlbench),
2. build N semantically equivalent executables with different code
   layouts (seeded Camino reordering),
3. measure each with the machine's performance counters (two events per
   run, five runs per counter group, median cycles),
4. regress CPI on MPKI, and
5. predict the CPI of perfect branch prediction with a 95% prediction
   interval — without simulating the rest of the machine.

Run:  python examples/quickstart.py
"""

from repro import (
    Interferometer,
    PerformanceModel,
    XeonE5440,
    get_benchmark,
)


def main() -> None:
    machine = XeonE5440(seed=1)
    interferometer = Interferometer(machine, trace_events=12000)
    benchmark = get_benchmark("400.perlbench")

    print(f"benchmark: {benchmark.name}")
    print(f"  procedures: {len(benchmark.spec.procedures)}, "
          f"static branch sites: {benchmark.spec.n_sites}")

    n_layouts = 30
    print(f"measuring {n_layouts} code reorderings "
          f"(each: 3 counter groups x 5 runs, median cycles)...")
    observations = interferometer.observe(benchmark, n_layouts=n_layouts)

    cpis = observations.cpis
    mpkis = observations.mpkis
    print(f"  CPI  range: {cpis.min():.3f} .. {cpis.max():.3f}")
    print(f"  MPKI range: {mpkis.min():.2f} .. {mpkis.max():.2f}")

    model = PerformanceModel.from_observations(observations)
    test = model.significance()
    print(f"\nmodel: CPI = {model.slope:.5f} * MPKI + {model.intercept:.5f}")
    print(f"  r = {model.r:.3f}, r^2 = {model.r_squared:.3f}, "
          f"t-test p = {test.p_value:.2e} "
          f"({'significant' if test.rejects_null() else 'NOT significant'})")

    perfect = model.perfect_event_prediction()
    mean_cpi = float(cpis.mean())
    improvement = (mean_cpi - perfect.mean) / mean_cpi * 100
    print(f"\nperfect branch prediction (0 MPKI):")
    print(f"  predicted CPI {perfect.mean:.3f}, 95% prediction interval "
          f"[{perfect.prediction.low:.3f}, {perfect.prediction.high:.3f}]")
    print(f"  that is a {improvement:.1f}% improvement over the current "
          f"predictor — measured on 'real hardware', no full-machine "
          f"simulator involved")


if __name__ == "__main__":
    main()
