#!/usr/bin/env python3
"""Scalar-vs-vector simulation-kernel benchmark.

Every address-hashed structure in :mod:`repro.uarch` carries two
simulation engines: the per-event scalar loop (the differential
oracle) and the chunked numpy kernels of :mod:`repro.uarch.vector`.
This benchmark times both engines on campaign-shaped inputs and
verifies — on every row — that they produce identical counts, then
writes the results to ``BENCH_kernels.json``.

Workloads:

* direction predictors and the BTB over the concatenated per-layout
  branch streams of 445.gobmk (one stream per reordered executable,
  ``REPRO_SCALE`` layouts);
* the L1I cache over the concatenated ifetch streams;
* the indirect-target predictors over an interpreter-shaped program
  (the suite benchmarks have no indirect sites);
* an end-to-end interferometry campaign on the structural core model,
  one fresh :class:`XeonCoreModel` per engine so the memo cache cannot
  leak results across engines.

Run:  python benchmarks/bench_kernels.py [--output PATH]
Exits 1 if any scalar/vector count diverges.

``--compare BASELINE.json`` additionally gates against a committed
report: any kernel family whose fresh speedup falls more than
``--max-regression`` (default 30%) below the committed speedup fails
the run.  Speedup ratios (scalar time / vector time on the same
machine) are far more stable across hosts than absolute ns/event, so
the gate travels to CI runners of different generations.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro import telemetry
from repro.harness.lab import get_lab
from repro.machine.config import XeonE5440Config
from repro.machine.core_model import XeonCoreModel
from repro.program.tracegen import generate_trace
from repro.toolchain.camino import Camino
from repro.uarch.btb import BranchTargetBuffer
from repro.uarch.caches import SetAssociativeCache
from repro.uarch.predictors.agree import AgreePredictor
from repro.uarch.predictors.bimodal import BimodalPredictor
from repro.uarch.predictors.bimode import BiModePredictor
from repro.uarch.predictors.gas import GAsPredictor
from repro.uarch.predictors.gshare import GsharePredictor
from repro.uarch.predictors.hybrid import HybridPredictor
from repro.uarch.predictors.indirect import IttageLitePredictor, LastTargetPredictor
from repro.uarch.predictors.pas import PAsPredictor
from repro.uarch.predictors.tournament import TournamentPredictor
from repro.workloads.suite import get_benchmark

BENCHMARK = "445.gobmk"


def _load_interpreter_spec():
    """The interpreter-shaped spec from examples/indirect_interferometry."""
    import importlib.util

    path = Path(__file__).resolve().parent.parent / "examples" / "indirect_interferometry.py"
    spec = importlib.util.spec_from_file_location("indirect_example", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module.build_interpreter()


def _campaign_streams(lab):
    """Per-layout branch and ifetch streams of the campaign benchmark."""
    bm = get_benchmark(BENCHMARK)
    branch, ifetch = [], []
    for i in range(lab.scale.n_layouts):
        exe = lab.interferometer.build_executable(bm, i)
        branch.append((exe.branch_address_stream(), exe.trace.outcomes))
        ifetch.append(exe.ifetch_address_stream())
    return branch, ifetch


def _indirect_streams(lab):
    """Per-layout (addresses, targets) streams of the interpreter spec."""
    spec = _load_interpreter_spec()
    toolchain = Camino()
    n_layouts = max(2, lab.scale.n_layouts // 5)
    n_events = lab.scale.trace_events * 5
    streams = []
    for i in range(n_layouts):
        trace = generate_trace(spec, seed=101 + i, n_events=n_events)
        exe = toolchain.build(spec, trace, layout_seed=1000 + i)
        streams.append((exe.branch_address_stream(), exe.trace.targets))
    return streams


def _time_engine(run) -> tuple[float, int]:
    """Best-of-2 wall time and the (identical) count of one engine."""
    best, count = float("inf"), 0
    for _ in range(2):
        start = telemetry.tick_seconds()
        count = run()
        best = min(best, telemetry.tick_seconds() - start)
    return best, count


def bench_row(name: str, n_events: int, scalar_run, vector_run) -> dict:
    """Time both engines over the same streams and compare their counts."""
    scalar_s, scalar_count = _time_engine(scalar_run)
    vector_s, vector_count = _time_engine(vector_run)
    row = {
        "kernel": name,
        "events": n_events,
        "scalar_count": scalar_count,
        "vector_count": vector_count,
        "diverged": scalar_count != vector_count,
        "scalar_ns_per_event": scalar_s / n_events * 1e9,
        "vector_ns_per_event": vector_s / n_events * 1e9,
        "scalar_events_per_sec": n_events / scalar_s,
        "vector_events_per_sec": n_events / vector_s,
        "speedup": scalar_s / vector_s,
    }
    print(
        f"  {name:<24s} {n_events:>9d} ev  "
        f"scalar {row['scalar_ns_per_event']:7.0f} ns/ev  "
        f"vector {row['vector_ns_per_event']:7.0f} ns/ev  "
        f"{row['speedup']:5.1f}x"
        + ("  ** DIVERGED **" if row["diverged"] else "")
    )
    return row


def _simulate_streams(structure, streams, warmup_fraction: float, engine: str) -> int:
    total = 0
    for addrs, outcomes in streams:
        total += structure.simulate(
            addrs, outcomes, warmup=int(len(addrs) * warmup_fraction), engine=engine
        )
    return total


def compare_to_baseline(
    report: dict, baseline: dict, max_regression: float
) -> list[str]:
    """Kernel families whose speedup regressed past *max_regression*.

    Families are matched by row name; a family present in only one
    report is reported as drift, not a regression — renames and new
    kernels should not trip the gate, but they should be visible.
    """
    fresh = {r["kernel"]: r for r in report["rows"]}
    committed = {r["kernel"]: r for r in baseline["rows"]}
    failures: list[str] = []
    floor_note = []
    for name in sorted(set(fresh) ^ set(committed)):
        side = "fresh" if name in fresh else "baseline"
        floor_note.append(f"  (family {name!r} only in the {side} report)")
    for name in sorted(set(fresh) & set(committed)):
        was, now = committed[name]["speedup"], fresh[name]["speedup"]
        floor = was * (1.0 - max_regression)
        if now < floor:
            failures.append(
                f"{name}: speedup {now:.2f}x regressed below "
                f"{floor:.2f}x (committed {was:.2f}x, "
                f"-{(1 - now / was) * 100:.0f}%)"
            )
    for note in floor_note:
        print(note)
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_kernels.json",
        help="where to write the JSON report",
    )
    parser.add_argument(
        "--compare",
        type=Path,
        default=None,
        metavar="BASELINE",
        help="committed BENCH_kernels.json to gate speedups against",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.30,
        help="per-family speedup regression tolerance (fraction, default 0.30)",
    )
    args = parser.parse_args()

    lab = get_lab()
    print(f"scale={lab.scale.name}: building {lab.scale.n_layouts} layouts of {BENCHMARK} ...")
    branch_streams, ifetch_streams = _campaign_streams(lab)
    n_branch = sum(len(a) for a, _ in branch_streams)
    indirect_streams = _indirect_streams(lab)
    n_indirect_events = sum(len(a) for a, _ in indirect_streams)
    n_indirect = sum(int(np.count_nonzero(t >= 0)) for _, t in indirect_streams)
    n_ifetch = sum(len(a) for a in ifetch_streams)
    print(
        f"streams: {n_branch} branch events, {n_ifetch} ifetch accesses, "
        f"{n_indirect} indirect branches (of {n_indirect_events} events)"
    )

    config = XeonE5440Config()
    predictors = {
        "bimodal-4096": lambda: BimodalPredictor(4096),
        "gshare-4096x12": lambda: GsharePredictor(4096, history_bits=12),
        "gas-4096x10": lambda: GAsPredictor(4096, history_bits=10),
        "pas-1024x16384": lambda: PAsPredictor(1024, 16384, history_bits=10),
        "agree-4096x8": lambda: AgreePredictor(4096, history_bits=8, bias_entries=2048),
        "bimode-4096x8": lambda: BiModePredictor(
            4096, history_bits=8, choice_entries=2048
        ),
        "tournament-alpha": lambda: TournamentPredictor(),
        "hybrid-xeon": lambda: HybridPredictor(
            bimodal_entries=config.bimodal_entries,
            global_entries=config.global_entries,
            history_bits=config.history_bits,
            chooser_entries=config.chooser_entries,
        ),
    }

    rows = []
    print("direction predictors:")
    for name, factory in predictors.items():
        structure = factory()
        rows.append(
            bench_row(
                name,
                n_branch,
                lambda: _simulate_streams(structure, branch_streams, 0.25, "scalar"),
                lambda: _simulate_streams(structure, branch_streams, 0.25, "vector"),
            )
        )

    print("btb:")
    btb = BranchTargetBuffer(
        entries=config.btb_entries, associativity=config.btb_associativity
    )
    rows.append(
        bench_row(
            "btb-xeon",
            n_branch,
            lambda: _simulate_streams(btb, branch_streams, 0.25, "scalar"),
            lambda: _simulate_streams(btb, branch_streams, 0.25, "vector"),
        )
    )

    print("caches:")
    l1i = SetAssociativeCache(config.l1i)

    def cache_run(engine):
        return sum(l1i.simulate(addrs, engine=engine) for addrs in ifetch_streams)

    rows.append(
        bench_row(
            "l1i-cache",
            n_ifetch,
            lambda: cache_run("scalar"),
            lambda: cache_run("vector"),
        )
    )

    print("indirect-target predictors:")
    for name, factory in {
        "last-target-512": lambda: LastTargetPredictor(512),
        "ittage-lite-1024": lambda: IttageLitePredictor(1024, 512),
    }.items():
        structure = factory()
        rows.append(
            bench_row(
                name,
                n_indirect,
                lambda: _simulate_streams(structure, indirect_streams, 0.25, "scalar"),
                lambda: _simulate_streams(structure, indirect_streams, 0.25, "vector"),
            )
        )

    print("end-to-end campaign (structural core model):")
    bm = get_benchmark(BENCHMARK)
    executables = [
        lab.interferometer.build_executable(bm, i) for i in range(lab.scale.n_layouts)
    ]

    def campaign(engine):
        core = XeonCoreModel(config)
        return sum(core.execute(exe, engine=engine).mispredicts for exe in executables)

    end_to_end = bench_row(
        "campaign-e2e",
        n_branch,
        lambda: campaign("scalar"),
        lambda: campaign("vector"),
    )

    diverged = any(r["diverged"] for r in rows) or end_to_end["diverged"]
    report = {
        "scale": lab.scale.name,
        "benchmark": BENCHMARK,
        "n_layouts": lab.scale.n_layouts,
        "branch_events": n_branch,
        "ifetch_accesses": n_ifetch,
        "indirect_branches": n_indirect,
        "rows": rows,
        "end_to_end": end_to_end,
        "diverged": diverged,
    }
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")
    if diverged:
        print("FAIL: scalar and vector engines diverged", file=sys.stderr)
        return 1
    best = max(r["speedup"] for r in rows)
    print(f"max kernel speedup: {best:.1f}x; end-to-end {end_to_end['speedup']:.1f}x")
    if args.compare is not None:
        baseline = json.loads(args.compare.read_text())
        failures = compare_to_baseline(report, baseline, args.max_regression)
        if failures:
            print(
                f"FAIL: {len(failures)} kernel famil"
                f"{'y' if len(failures) == 1 else 'ies'} regressed past "
                f"{args.max_regression * 100:.0f}% of the committed speedup:",
                file=sys.stderr,
            )
            for failure in failures:
                print(f"  {failure}", file=sys.stderr)
            return 1
        print(
            f"regression gate: all shared families within "
            f"{args.max_regression * 100:.0f}% of {args.compare}"
        )
    return 0


if __name__ == "__main__":
    os.environ.setdefault("REPRO_SCALE", "small")
    sys.exit(main())
