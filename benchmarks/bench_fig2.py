"""Figure 2 — MPKI vs CPI regression with CI/PI for perlbench/omnetpp."""

from repro.harness import fig2


def test_fig2_regression_bands(run_once, lab):
    result = run_once(lambda: fig2.run(lab))
    print()
    print(result.render())
    for panel in result.panels:
        # Shape checks: positive misprediction cost, significant fit,
        # bands ordered.
        assert panel.model.slope > 0
        assert panel.model.is_significant()
        assert (panel.pi_low <= panel.ci_low).all()
        assert (panel.ci_high <= panel.pi_high).all()
