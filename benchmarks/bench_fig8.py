"""Figure 8 — predicted CPI of real and simulated predictors (§7.2)."""

from repro.harness import fig8


def test_fig8_predicted_cpi(run_once, lab):
    result = run_once(lambda: fig8.run(lab))
    print()
    print(result.render())
    real, _ = result.real_cpi
    perfect, perfect_half = result.perfect_cpi
    ltage, _ = result.predictor_cpi("L-TAGE")
    # §7.2.1: perfect prediction improves on the real predictor —
    # paper measured 7-16% with an 11.8% average.
    assert perfect < real
    assert 5.0 < result.perfect_improvement_percent < 20.0
    # §7.2.2: L-TAGE sits between the real predictor and perfect —
    # paper measured a 4.8% average improvement.
    assert perfect < ltage < real
    assert 1.0 < result.ltage_improvement_percent < 10.0
    # Prediction intervals widen toward 0 MPKI (extrapolation).
    assert perfect_half > 0.0
