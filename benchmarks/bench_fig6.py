"""Figure 6 — blame assignment: cumulative r² per event + combined model."""

from repro.harness import fig6


def test_fig6_blame(run_once, lab):
    result = run_once(lambda: fig6.run(lab))
    print()
    print(result.render())
    assert len(result.reports) == 23
    # Shape checks: branch mispredictions are the dominant blame for the
    # great majority of benchmarks; the combined model never explains
    # less than the best single event where it fits; insensitive FP
    # benchmarks have near-zero branch blame.
    dominant_branch = sum(1 for r in result.reports if r.dominant_event == "mpki")
    assert dominant_branch >= 15
    by_name = {r.benchmark: r for r in result.reports}
    assert by_name["470.lbm"].per_event["mpki"].r_squared < 0.3
    assert by_name["462.libquantum"].per_event["mpki"].r_squared > 0.6
