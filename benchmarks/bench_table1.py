"""Table 1 — per-benchmark regression models with PIs at 0 MPKI."""

from repro.harness import table1


def test_table1_models(run_once, lab):
    result = run_once(lambda: table1.run(lab))
    print()
    print(result.render())
    assert len(result.rows) >= 18  # paper: 20 significant benchmarks
    for row in result.rows:
        # Slopes are the per-MPKI CPI cost: positive, order of the
        # misprediction penalty / 1000 (paper: 0.016-0.041 for all but
        # two ill-conditioned benchmarks).
        assert row.slope > 0
        assert row.low < row.intercept < row.high
    # mcf's intercept dwarfs the int benchmarks' (paper: 4.675 vs ~0.5).
    by_name = {row.benchmark: row for row in result.rows}
    if "429.mcf" in by_name and "456.hmmer" in by_name:
        assert by_name["429.mcf"].intercept > 3 * by_name["456.hmmer"].intercept
