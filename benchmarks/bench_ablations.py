"""Ablation benches for the design choices DESIGN.md calls out.

* median-of-5 vs single-run measurement (noise rejection, §5.5);
* number of sampled layouts vs prediction-interval width (§6.3);
* predictor table pressure vs elicited MPKI spread (the interferometer's
  signal source).
"""

import numpy as np

from repro.core.interferometer import Interferometer
from repro.core.model import PerformanceModel
from repro.machine.counters import Counter
from repro.machine.pmc import measure_executable
from repro.machine.system import XeonE5440
from repro.machine.config import XeonE5440Config
from repro.workloads.suite import get_benchmark


def test_ablation_median_of_five(run_once, lab):
    """Median-of-5 cycles rejects noise spikes single runs absorb."""

    def ablation():
        benchmark = lab.benchmark("456.hmmer")
        interferometer = lab.interferometer
        exe = interferometer.build_executable(benchmark, 0)
        machine = lab.machine
        singles = np.array(
            [
                machine.run_once(exe, run_key=f"abl/{i}")[Counter.CYCLES]
                for i in range(30)
            ],
            dtype=float,
        )
        medians = np.array(
            [
                measure_executable(
                    machine, exe, events=[Counter.BRANCHES], runs_per_group=5
                ).cycles
                for _ in range(1)
            ],
            dtype=float,
        )
        # Error of a median measurement vs spread of singles.
        center = np.median(singles)
        return float(singles.std()), float(abs(medians[0] - center))

    single_std, median_err = run_once(ablation)
    print(f"\nsingle-run cycle std {single_std:.0f}; "
          f"median-of-5 deviation from central value {median_err:.0f}")
    assert median_err < 2 * single_std


def test_ablation_sample_count_vs_interval_width(run_once, lab):
    """More layouts -> tighter prediction interval at 0 MPKI (§6.3)."""

    def ablation():
        benchmark = lab.benchmark("445.gobmk")
        observations = lab.observations("445.gobmk")
        n = len(observations)
        halves = {}
        for count in (n // 2, n):
            from repro.core.observations import ObservationSet

            subset = ObservationSet(benchmark=benchmark.name)
            subset.extend(observations.observations[:count])
            model = PerformanceModel.from_observations(subset)
            halves[count] = model.perfect_event_prediction().prediction.half_width
        return halves

    halves = run_once(ablation)
    counts = sorted(halves)
    print(f"\nPI half-width at 0 MPKI by sample count: "
          + ", ".join(f"n={c}: {halves[c]:.4f}" for c in counts))
    assert halves[counts[-1]] <= halves[counts[0]] * 1.25  # usually shrinks


def test_ablation_table_pressure_vs_mpki_spread(run_once, lab):
    """Smaller predictor tables alias more, widening the MPKI spread the
    interferometer has to work with — the paper's signal source (§4.2)."""

    def ablation():
        benchmark = get_benchmark("445.gobmk")
        spreads = {}
        for label, bimodal, glob, chooser in (
            ("small", 512, 1024, 512),
            ("default", 2048, 4096, 2048),
            ("large", 8192, 16384, 8192),
        ):
            config = XeonE5440Config(
                bimodal_entries=bimodal,
                global_entries=glob,
                chooser_entries=chooser,
            )
            machine = XeonE5440(config=config, seed=lab.machine.seed)
            interferometer = Interferometer(
                machine, trace_events=lab.scale.trace_events
            )
            observations = interferometer.observe(
                benchmark, n_layouts=min(12, lab.scale.n_layouts)
            )
            spreads[label] = float(observations.mpkis.std())
        return spreads

    spreads = run_once(ablation)
    print(f"\nMPKI std by table size: {spreads}")
    assert spreads["small"] > spreads["large"]
