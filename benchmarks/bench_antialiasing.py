"""Ablation: do anti-aliasing predictor organizations starve the method?

§2.2 worries that widely deployed aliasing-resistant designs would
remove the variance interferometry feeds on.  This bench quantifies the
threat for the agree and bi-mode organizations on the same reordered
executables: it reports each design's accuracy and its layout-to-layout
MPKI spread next to the shipped hybrid's.

Observed result at our trace scales: the *relative* layout sensitivity
of agree/bi-mode stays comparable to the hybrid's — their anti-aliasing
helps most against opposite-bias destructive pairs (see
tests/test_predictors_antialiasing.py), while the broader index-
collision churn that drives interferometry's signal survives.  The
§2.2 threat, for these organizations, does not materialize.
"""

import numpy as np

from repro.pintool.brsim import PinTool
from repro.uarch.predictors.agree import AgreePredictor
from repro.uarch.predictors.bimode import BiModePredictor
from repro.uarch.predictors.hybrid import HybridPredictor


def test_antialiasing_layout_sensitivity(run_once, lab):
    def experiment():
        benchmark = lab.benchmark("445.gobmk")
        observations = lab.observations("445.gobmk")
        layouts = min(12, len(observations))
        tool = PinTool(
            [
                HybridPredictor(2048, 4096, 8, 2048, name="hybrid-twin"),
                AgreePredictor(entries=4096, history_bits=8, name="agree"),
                BiModePredictor(entries=4096, history_bits=8, name="bimode"),
            ],
            warmup_fraction=lab.machine.config.warmup_fraction,
        )
        spreads: dict[str, list[float]] = {}
        for obs in observations.observations[:layouts]:
            executable = lab.interferometer.build_executable(
                benchmark, obs.layout_index
            )
            for name, result in tool.run(executable).items():
                spreads.setdefault(name, []).append(result.mpki)
        return {
            name: (float(np.mean(v)), float(np.std(v))) for name, v in spreads.items()
        }

    stats = run_once(experiment)
    print()
    for name, (mean, std) in sorted(stats.items()):
        print(f"  {name:<12} MPKI {mean:6.2f} ± {std:.3f} "
              f"(relative spread {std / mean * 100:.1f}%)")
    hybrid_mean, hybrid_std = stats["hybrid-twin"]
    hybrid_rel = hybrid_std / hybrid_mean
    for name in ("agree", "bimode"):
        mean, std = stats[name]
        assert mean > 0 and std > 0
        # The layout signal survives the anti-aliasing organization:
        # relative spread stays within 50% of the hybrid's in either
        # direction (i.e. it is neither eliminated nor exploded).
        assert 0.5 * hybrid_rel <= std / mean <= 1.5 * hybrid_rel
