"""Figure 3 — cache models for 454.calculix under heap randomization.

Includes the ablation the paper implies: code reordering *alone* gives
the data caches no variance to regress on; adding the randomizing
allocator is what elicits it.
"""

from repro.harness import fig3


def test_fig3_cache_models(run_once, lab):
    result = run_once(lambda: fig3.run(lab))
    print()
    print(result.render())
    assert result.l1_panel.model.slope > 0
    assert result.l2_panel.model.slope > 0
    # At small scale and above, both relationships are significant.
    if lab.scale.n_layouts >= 40:
        assert result.l1_panel.model.is_significant()
        assert result.l2_panel.model.is_significant()


def test_fig3_ablation_heap_randomization_needed(run_once, lab):
    """Without heap randomization, L1D misses barely move."""

    def ablation():
        code_only = lab.observations("454.calculix").series("l1d_mpki")
        randomized = lab.heap_observations("454.calculix").series("l1d_mpki")
        return float(code_only.std()), float(randomized.std())

    code_std, heap_std = run_once(ablation)
    print(f"\nL1D MPKI std: code reordering only {code_std:.4f}, "
          f"+heap randomization {heap_std:.4f}")
    assert heap_std > code_std * 3
