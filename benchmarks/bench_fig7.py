"""Figure 7 — MPKI of real and simulated branch predictors."""

from repro.harness import fig7
from repro.harness.fig7 import PREDICTOR_ORDER


def test_fig7_predictor_mpki(run_once, lab):
    result = run_once(lambda: fig7.run(lab))
    print()
    print(result.render())
    # Paper shapes: GAs accuracy grows with budget; the real predictor
    # lands between GAs-4KB and GAs-8KB; L-TAGE beats everything.
    averages = [result.average_mpki(name) for name in PREDICTOR_ORDER]
    gas = averages[:4]
    assert gas == sorted(gas, reverse=True)  # 2KB worst ... 16KB best
    real = result.average_mpki("real")
    assert result.average_mpki("GAs-4KB") > real > result.average_mpki("GAs-8KB") * 0.85
    ltage = result.average_mpki("L-TAGE")
    assert ltage < min(gas)
    # Paper: L-TAGE improves on the real predictor by 37%.
    improvement = (real - ltage) / real * 100
    assert 20 < improvement < 55
