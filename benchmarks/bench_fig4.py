"""Figure 4 — MASE linearity study: regression-extrapolation errors."""

from repro.harness import fig4


def test_fig4_linearity_errors(run_once, lab):
    result = run_once(lambda: fig4.run(lab))
    print()
    print(result.render())
    study = result.study
    # Paper shapes: the two SPEC2000 outliers dominate the error
    # ranking; estimating L-TAGE (interpolation) is far more accurate
    # than extrapolating to perfect prediction.
    worst = study.sorted_by_perfect_error()[-2:]
    assert {b.benchmark for b in worst} == {"252.eon", "178.galgel"}
    assert study.mean_ltage_error < study.mean_perfect_error
    assert study.mean_perfect_error < 5.0  # paper: 1.32%
