"""§4.6/§6.4 — the 20-of-23 significance screen, plus headline numbers."""

from repro.harness import headline, significance


def test_significance_screen(run_once, lab):
    result = run_once(lambda: significance.run(lab))
    print()
    print(result.render())
    assert len(result.rows) == 23
    # Paper: 20 of 23 reject the null hypothesis.  Allow one borderline
    # miss below paper scale.
    if lab.scale.name == "paper":
        assert result.n_significant == 20
    else:
        assert 18 <= result.n_significant <= 21
    by_name = {row.benchmark: row for row in result.rows}
    for name in ("410.bwaves", "470.lbm"):
        assert not by_name[name].significant


def test_headline_predictions(run_once, lab):
    result = run_once(lambda: headline.run(lab))
    print()
    print(result.render())
    # §1.4 shapes: perfect prediction improves perlbench by a double-digit
    # percentage (paper: 26%); halving MPKI gives about half that
    # improvement (paper: 13%); a 10% CPI improvement needs a large
    # misprediction reduction (paper: 38%).
    assert 8.0 < result.perfect_improvement_percent < 40.0
    assert result.halved_improvement_percent < result.perfect_improvement_percent
    assert 20.0 < result.reduction_for_10pct < 90.0
