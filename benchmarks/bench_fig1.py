"""Figure 1 — violin plots of CPI variation under code reordering."""

from repro.harness import fig1


def test_fig1_violins(run_once, lab):
    result = run_once(lambda: fig1.run(lab))
    print()
    print(result.render())
    assert len(result.rows) == 23
    # Shape check: the insensitive FP benchmarks show the least spread.
    by_name = {row.benchmark: row for row in result.rows}
    assert by_name["470.lbm"].std_pct < by_name["445.gobmk"].std_pct
