"""Figure 5 — normalized CPI-vs-MPKI regression lines, linear vs not."""

from repro.harness import fig4, fig5


def test_fig5_normalized_lines(run_once, lab):
    def experiment():
        study = fig4.run(lab).study
        return fig5.run(lab, study=study)

    result = run_once(experiment)
    print()
    print(result.render())
    # Panel (a) benchmarks extrapolate to ~1.0 at 0 MPKI; panel (b)
    # benchmarks miss by visibly more.
    mean_linear_err = sum(l.error_at_zero_percent for l in result.linear) / 3
    mean_nonlinear_err = sum(l.error_at_zero_percent for l in result.nonlinear) / 3
    assert mean_linear_err < mean_nonlinear_err
    for line in result.linear + result.nonlinear:
        assert line.slope > 0
