"""Ablation: code-placement optimization vs interferometry's signal (§2.2).

The paper observes that its technique depends on production code NOT
being placement-optimized: "if thoughtful code placement optimizations
... were widely adopted, our results would show less variance."  This
bench runs the conflict-avoiding placer and verifies both halves: the
optimizer finds a layout better than nearly all random ones, and the
gap it closes is the same variance interferometry measures.
"""

import numpy as np

from repro.machine.counters import Counter
from repro.machine.pmc import measure_executable
from repro.toolchain.camino import Camino
from repro.toolchain.placement import ConflictAvoidingPlacer, hot_grouping_order


def test_placement_optimization(run_once, lab):
    def experiment():
        benchmark = lab.benchmark("445.gobmk")
        trace = benchmark.trace(lab.scale.trace_events)
        camino = Camino()
        placer = ConflictAvoidingPlacer()
        observations = lab.observations("445.gobmk")
        random_cpis = observations.cpis
        hot = hot_grouping_order(benchmark.spec, trace)
        result = placer.optimize(
            benchmark.spec, trace, iterations=60, seed=7, start=hot
        )
        exe = camino.build_custom(benchmark.spec, trace, list(result.object_files))
        optimized = measure_executable(
            lab.machine, exe, events=[Counter.BRANCH_MISPREDICTS]
        )
        return random_cpis, optimized.cpi, result

    random_cpis, optimized_cpi, result = run_once(experiment)
    quantile = float((random_cpis > optimized_cpi).mean())
    print(f"\nrandom layouts CPI {random_cpis.mean():.4f} ± {random_cpis.std():.4f}; "
          f"optimized {optimized_cpi:.4f} (beats {quantile * 100:.0f}%); "
          f"search removed {result.improvement_percent:.1f}% of mispredictions")
    # The optimizer must land in the favourable tail of the layout
    # distribution it is exploiting.
    assert quantile >= 0.85
    assert result.final_score <= result.initial_score
