"""Extension study: the full predictor zoo under the paper's methodology."""

from repro.harness import extended


def test_extended_predictor_study(run_once, lab):
    result = run_once(lambda: extended.run(lab))
    print()
    print(result.render())
    for benchmark in extended.STUDY_BENCHMARKS:
        rows = result.rows_for(benchmark)
        assert len(rows) == 6
        # Predicted CPI must be monotone in MPKI (it is a linear model).
        cpis = [row.predicted_cpi for row in rows]
        assert cpis == sorted(cpis)
        # TAGE should be among the best designs on every benchmark.
        ranked = [row.predictor for row in rows]
        assert ranked.index("TAGE") <= 2
