"""Benchmark fixtures.

The benchmarks regenerate the paper's tables and figures and print the
resulting rows, so ``pytest benchmarks/ --benchmark-only -s`` doubles as
the reproduction report.  Each experiment runs exactly once
(``benchmark.pedantic(rounds=1)``): the quantity of interest is the
experiment's output, not micro-timing stability, and campaigns are
cached in the shared laboratory anyway.

Scale with ``REPRO_SCALE`` (ci / small / paper); default is ``small``.
"""

from __future__ import annotations

import pytest

from repro.harness.lab import Laboratory, get_lab


@pytest.fixture(scope="session")
def lab() -> Laboratory:
    """Process-wide laboratory at the environment's scale."""
    return get_lab()


@pytest.fixture
def run_once(benchmark):
    """Run an experiment exactly once under pytest-benchmark."""

    def runner(fn):
        return benchmark.pedantic(fn, rounds=1, iterations=1)

    return runner
