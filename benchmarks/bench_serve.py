#!/usr/bin/env python3
"""Closed-loop load generator for the campaign server.

Exercises ``repro-cli serve`` the way a fleet of reproduction clients
would: a store is pre-seeded with a few campaigns (the measure-once
economics), the server is started over it as a subprocess, a burst of
concurrent identical queries lands on a *cold* benchmark (provoking
request coalescing around the single in-flight measurement), and then
closed-loop client threads hammer the warm keys.  The run ends with
SIGTERM and asserts the graceful-drain contract: exit code 0 and a
``drained:`` summary.

Results land in ``BENCH_serve.json``:

* client-side p50/p99 latency (ms) of the warm-key load phase,
* server-side latency percentiles from ``/metrics``,
* store hit rate (warm keys are served from disk, not re-measured),
* coalescing ratio (coalesced / total requests) — must be > 0,
* sustained throughput of the load phase.

Every response is checked for bit-identity against its first sibling:
a served campaign is a pure function of the request key, so any two
responses for the same key must match byte-for-byte.

Run:  REPRO_SCALE=small python benchmarks/bench_serve.py [--output PATH]
"""

from __future__ import annotations

import argparse
import http.client
import json
import signal
import statistics
import subprocess
import sys
import threading
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.harness.lab import Laboratory, scale_from_env
from repro.serve import percentile

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Keys the store is seeded with before the server starts (warm), and
#: the key the coalescing burst lands on (cold: measured by the server).
WARM_BENCHMARKS = ("429.mcf", "456.hmmer")
COLD_BENCHMARK = "403.gcc"

MACHINE_SEED = 1


def fetch(port: int, target: str, timeout: float = 120.0) -> tuple[int, bytes]:
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        conn.request("GET", target)
        response = conn.getresponse()
        return response.status, response.read()
    finally:
        conn.close()


def seed_store(cache_dir: Path, scale) -> float:
    """Measure the warm campaigns into the store; returns seconds."""
    lab = Laboratory(
        scale=scale, machine_seed=MACHINE_SEED, cache_dir=cache_dir
    )
    started = time.perf_counter()
    for name in WARM_BENCHMARKS:
        lab.observations(name)
    return time.perf_counter() - started


def start_server(cache_dir: Path, workers: int, backlog: int):
    """Launch ``python -m repro.serve`` and wait for its banner."""
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.serve",
            "--port",
            "0",
            "--cache-dir",
            str(cache_dir),
            "--workers",
            str(workers),
            "--backlog",
            str(backlog),
            "--machine-seed",
            str(MACHINE_SEED),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    banner = proc.stdout.readline()
    if "serving campaigns on http://" not in banner:
        proc.kill()
        raise RuntimeError(f"server failed to start: {banner!r}")
    port = int(banner.rsplit(":", 1)[1].split()[0])
    return proc, port


def coalescing_burst(port: int, fanout: int) -> dict:
    """Concurrent identical queries against a cold key."""
    target = f"/campaign?benchmark={COLD_BENCHMARK}&layouts=8"
    payloads: list[bytes] = [b""] * fanout
    statuses: list[int] = [0] * fanout

    def worker(index: int) -> None:
        statuses[index], payloads[index] = fetch(port, target)

    threads = [
        threading.Thread(target=worker, args=(i,)) for i in range(fanout)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    assert all(status == 200 for status in statuses), statuses
    assert len(set(payloads)) == 1, "coalesced responses must be identical"
    return {"fanout": fanout, "wall_seconds": elapsed}


def load_phase(
    port: int, scale, clients: int, requests_per_client: int
) -> dict:
    """Closed-loop clients over mixed warm keys; client-side latency."""
    layout_counts = (4, 8, scale.n_layouts)
    targets = [
        f"/campaign?benchmark={name}&layouts={n}"
        for name in WARM_BENCHMARKS
        for n in layout_counts
    ]
    latencies: list[list[float]] = [[] for _ in range(clients)]
    references: dict[str, bytes] = {}
    reference_lock = threading.Lock()
    failures: list[str] = []

    def worker(client: int) -> None:
        for i in range(requests_per_client):
            target = targets[(client + i) % len(targets)]
            started = time.perf_counter()
            status, payload = fetch(port, target)
            latencies[client].append(time.perf_counter() - started)
            if status != 200:
                failures.append(f"{target}: HTTP {status}")
                return
            with reference_lock:
                reference = references.setdefault(target, payload)
            if payload != reference:
                failures.append(f"{target}: response bytes diverged")
                return

    threads = [
        threading.Thread(target=worker, args=(c,)) for c in range(clients)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    if failures:
        raise RuntimeError("; ".join(failures[:5]))
    samples = sorted(s for per_client in latencies for s in per_client)
    return {
        "clients": clients,
        "requests": len(samples),
        "wall_seconds": elapsed,
        "throughput_rps": len(samples) / elapsed if elapsed else 0.0,
        "latency_ms": {
            "p50": percentile(samples, 0.50) * 1000.0,
            "p99": percentile(samples, 0.99) * 1000.0,
            "mean": statistics.fmean(samples) * 1000.0 if samples else 0.0,
        },
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output", type=Path, default=REPO_ROOT / "BENCH_serve.json"
    )
    parser.add_argument("--clients", type=int, default=4)
    parser.add_argument("--requests-per-client", type=int, default=25)
    parser.add_argument("--burst-fanout", type=int, default=6)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--backlog", type=int, default=32)
    parser.add_argument(
        "--work-dir",
        type=Path,
        default=None,
        help="store directory (a temp dir by default)",
    )
    args = parser.parse_args()

    scale = scale_from_env()
    if args.work_dir is not None:
        cache_dir = args.work_dir
        cache_dir.mkdir(parents=True, exist_ok=True)
    else:
        import tempfile

        tmp = tempfile.TemporaryDirectory(prefix="bench-serve-")
        cache_dir = Path(tmp.name)

    print(f"seeding store with {WARM_BENCHMARKS} at scale {scale.name} ...")
    seed_seconds = seed_store(cache_dir, scale)
    print(f"  seeded in {seed_seconds:.1f}s")

    proc, port = start_server(cache_dir, args.workers, args.backlog)
    try:
        print(f"server on port {port}; cold coalescing burst ...")
        burst = coalescing_burst(port, args.burst_fanout)
        print(f"  {burst['fanout']} duplicates in {burst['wall_seconds']:.2f}s")

        print(
            f"load phase: {args.clients} clients x "
            f"{args.requests_per_client} requests ..."
        )
        load = load_phase(
            port, scale, args.clients, args.requests_per_client
        )
        print(
            f"  p50 {load['latency_ms']['p50']:.1f}ms  "
            f"p99 {load['latency_ms']['p99']:.1f}ms  "
            f"{load['throughput_rps']:.0f} req/s"
        )

        status, metrics_body = fetch(port, "/metrics")
        assert status == 200
        metrics = json.loads(metrics_body)

        proc.send_signal(signal.SIGTERM)
        out, _ = proc.communicate(timeout=60)
    except BaseException:
        proc.kill()
        proc.communicate()
        raise

    drained = proc.returncode == 0 and "drained:" in out
    if not drained:
        print(f"drain FAILED (exit {proc.returncode}):\n{out}", file=sys.stderr)

    requests = metrics["requests"]
    coalescing_ratio = metrics["coalesced"] / requests if requests else 0.0
    report = {
        "scale": scale.name,
        "workers": args.workers,
        "backlog": args.backlog,
        "seed_seconds": round(seed_seconds, 3),
        "coalescing_burst": burst,
        "load": load,
        "server_metrics": metrics,
        "coalescing_ratio": coalescing_ratio,
        "store_hit_rate": metrics.get("store", {}).get("hit_rate", 0.0),
        "drain_exit_code": proc.returncode,
        "drain_clean": drained,
    }
    args.output.write_text(json.dumps(report, indent=1, sort_keys=True) + "\n")
    print(f"wrote {args.output}")

    if coalescing_ratio <= 0.0:
        print("FAIL: no requests coalesced", file=sys.stderr)
        return 1
    if not drained:
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
