"""Tests for the sample-escalation protocol (§6.3)."""

from __future__ import annotations

import pytest

from repro.core.escalation import SampleEscalation
from repro.core.interferometer import Interferometer
from repro.errors import ConfigurationError
from repro.workloads.suite import get_benchmark


@pytest.fixture(scope="module")
def interferometer(machine):
    # Longer traces than the unit tests use: at very short trace lengths
    # even the branch-insensitive benchmarks show spurious correlation.
    return Interferometer(machine, trace_events=6000)


class TestEscalation:
    def test_sensitive_benchmark_stops_early(self, interferometer):
        escalation = SampleEscalation(interferometer, batch=8, max_samples=24)
        result = escalation.run(get_benchmark("445.gobmk"))
        assert result.significant
        assert result.samples_used == 8
        assert result.rounds == 1

    def test_insensitive_benchmark_exhausts_budget(self, interferometer):
        escalation = SampleEscalation(interferometer, batch=6, max_samples=12)
        result = escalation.run(get_benchmark("470.lbm"))
        assert not result.significant
        assert result.samples_used == 12
        assert result.rounds == 2

    def test_all_data_kept(self, interferometer):
        escalation = SampleEscalation(interferometer, batch=6, max_samples=12)
        result = escalation.run(get_benchmark("410.bwaves"))
        indices = [obs.layout_index for obs in result.observations]
        assert indices == list(range(result.samples_used))

    def test_p_values_recorded(self, interferometer):
        escalation = SampleEscalation(interferometer, batch=6, max_samples=12)
        result = escalation.run(get_benchmark("470.lbm"))
        assert len(result.p_values) == result.rounds
        assert all(0.0 <= p <= 1.0 for p in result.p_values)

    def test_validation(self, interferometer):
        with pytest.raises(ConfigurationError):
            SampleEscalation(interferometer, batch=0)
        with pytest.raises(ConfigurationError):
            SampleEscalation(interferometer, batch=100, max_samples=50)


class TestPrecisionEscalation:
    def test_tight_target_reached_on_sensitive_benchmark(self, interferometer):
        from repro.core.escalation import PrecisionEscalation

        escalation = PrecisionEscalation(
            interferometer, batch=8, max_samples=32, target_percent_half_width=25.0
        )
        result = escalation.run(get_benchmark("462.libquantum"))
        assert result.achieved
        assert result.samples_used <= 32
        assert result.half_widths[-1] <= 25.0

    def test_impossible_target_exhausts_budget(self, interferometer):
        from repro.core.escalation import PrecisionEscalation

        escalation = PrecisionEscalation(
            interferometer, batch=8, max_samples=16, target_percent_half_width=0.0001
        )
        result = escalation.run(get_benchmark("462.libquantum"))
        assert not result.achieved
        assert result.samples_used == 16

    def test_half_widths_shrink_with_samples(self, interferometer):
        from repro.core.escalation import PrecisionEscalation

        escalation = PrecisionEscalation(
            interferometer, batch=6, max_samples=24, target_percent_half_width=0.0001
        )
        result = escalation.run(get_benchmark("445.gobmk"))
        assert len(result.half_widths) == 4
        # The PI half-width converges to t*(dof)·s; the t* factor shrinks
        # with samples, but the residual-scatter estimate s fluctuates,
        # so require "no blow-up" rather than strict monotonicity.
        assert result.half_widths[-1] < result.half_widths[0] * 1.2

    def test_validation(self, interferometer):
        from repro.core.escalation import PrecisionEscalation

        with pytest.raises(ConfigurationError):
            PrecisionEscalation(interferometer, target_percent_half_width=0.0)
        with pytest.raises(ConfigurationError):
            PrecisionEscalation(interferometer, batch=0)
