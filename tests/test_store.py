"""Tests for the disk-backed campaign store and the parallel Laboratory."""

from __future__ import annotations

import pytest

from repro.core.interferometer import Interferometer
from repro.core.escalation import SampleEscalation
from repro.errors import ConfigurationError, ReproError
from repro.harness.lab import Laboratory, Scale
from repro.machine.system import XeonE5440
from repro.store import CampaignKey, CampaignStore, config_digest
from repro.workloads.suite import get_benchmark

from tests.test_model import _synthetic_observations

#: A deliberately tiny scale so every store test measures only a handful
#: of layouts.
TINY = Scale(
    name="tiny",
    n_layouts=4,
    trace_events=2500,
    mase_trace_events=2000,
    mase_configs=5,
    ltage_layouts=4,
)


def _key(benchmark="456.hmmer", trace_events=2500, seed=7, heap=False, runs=5):
    machine = XeonE5440(seed=seed)
    return CampaignKey(
        benchmark=benchmark,
        trace_events=trace_events,
        runs_per_group=runs,
        machine_seed=seed,
        config_digest=config_digest(machine.config),
        randomize_heap=heap,
    )


class TestCampaignKey:
    def test_digest_stable(self):
        assert _key().digest() == _key().digest()

    def test_digest_varies_with_every_component(self):
        base = _key().digest()
        assert _key(benchmark="470.lbm").digest() != base
        assert _key(trace_events=6000).digest() != base
        assert _key(seed=8).digest() != base
        assert _key(heap=True).digest() != base
        assert _key(runs=3).digest() != base

    def test_for_interferometer(self, machine):
        interferometer = Interferometer(machine, trace_events=2500)
        key = CampaignKey.for_interferometer(interferometer, "456.hmmer")
        assert key.benchmark == "456.hmmer"
        assert key.trace_events == 2500
        assert key.machine_seed == machine.seed
        assert not key.randomize_heap

    def test_filename_mentions_benchmark_and_heap(self):
        assert "456_hmmer" in _key().filename
        assert "-heap-" in _key(heap=True).filename


class TestStoreRoundTrip:
    def test_synthetic_round_trip_bit_equal(self, tmp_path):
        original = _synthetic_observations(n=12, benchmark="456.hmmer")
        store = CampaignStore(tmp_path)
        key = _key()
        store.save(key, original)
        reloaded = CampaignStore(tmp_path).load(key)
        assert reloaded is not None
        assert (reloaded.cpis == original.cpis).all()
        assert (reloaded.mpkis == original.mpkis).all()
        assert (reloaded.series("l2_mpki") == original.series("l2_mpki")).all()

    def test_get_measures_once_then_hits(self, tmp_path):
        calls = []

        def measure(start, n):
            calls.append((start, n))
            return _synthetic_observations(n=n, benchmark="456.hmmer").observations

        store = CampaignStore(tmp_path)
        first = store.get(_key(), 6, measure)
        assert calls == [(0, 6)]
        assert store.stats.misses == 1

        second = CampaignStore(tmp_path)
        again = second.get(_key(), 6, measure)
        assert calls == [(0, 6)]  # no new measurement
        assert second.stats.hits == 1
        assert second.stats.layouts_measured == 0
        assert (first.cpis == again.cpis).all()

    def test_partial_campaign_extends_incrementally(self, tmp_path):
        calls = []

        def measure(start, n):
            calls.append((start, n))
            full = _synthetic_observations(n=start + n, benchmark="456.hmmer")
            return full.observations[start:]

        store = CampaignStore(tmp_path)
        store.get(_key(), 4, measure)
        extended = store.get(_key(), 10, measure)
        assert calls == [(0, 4), (4, 6)]  # only the missing suffix
        assert len(extended) == 10
        # the extension was persisted: a third request is a pure hit
        third = CampaignStore(tmp_path)
        third.get(_key(), 10, lambda s, n: pytest.fail("should not measure"))
        assert third.stats.hits == 1

    def test_benchmark_mismatch_rejected(self, tmp_path):
        store = CampaignStore(tmp_path)
        with pytest.raises(ConfigurationError):
            store.save(_key(), _synthetic_observations(n=4, benchmark="other"))

    def test_provenance_mismatch_rejected(self, tmp_path):
        store = CampaignStore(tmp_path)
        key = _key()
        store.save(key, _synthetic_observations(n=4, benchmark="456.hmmer"))
        # Forge a key with the same digest-addressed file but different
        # provenance by renaming the stored file.
        other = _key(seed=8)
        store.path_for(key).rename(store.path_for(other))
        with pytest.raises(ReproError, match="provenance"):
            store.load(other)

    def test_bad_n_layouts(self, tmp_path):
        store = CampaignStore(tmp_path)
        with pytest.raises(ConfigurationError):
            store.get(_key(), 0, lambda s, n: [])


class TestCacheInvalidation:
    def test_changed_scale_misses(self, tmp_path):
        lab_a = Laboratory(scale=TINY, machine_seed=7, cache_dir=tmp_path)
        lab_a.observations("456.hmmer")
        assert lab_a.store.stats.misses == 1

        other_scale = Scale(
            name="tiny6k", n_layouts=4, trace_events=6000,
            mase_trace_events=2000, mase_configs=5, ltage_layouts=4,
        )
        lab_b = Laboratory(scale=other_scale, machine_seed=7, cache_dir=tmp_path)
        lab_b.observations("456.hmmer")
        assert lab_b.store.stats.hits == 0
        assert lab_b.store.stats.misses == 1

    def test_changed_machine_seed_misses(self, tmp_path):
        Laboratory(scale=TINY, machine_seed=7, cache_dir=tmp_path).observations(
            "456.hmmer"
        )
        lab = Laboratory(scale=TINY, machine_seed=8, cache_dir=tmp_path)
        lab.observations("456.hmmer")
        assert lab.store.stats.hits == 0
        assert lab.store.stats.misses == 1

    def test_heap_flag_separates_campaigns(self, tmp_path):
        lab = Laboratory(scale=TINY, machine_seed=7, cache_dir=tmp_path)
        code = lab.observations("456.hmmer")
        heap = lab.heap_observations("456.hmmer")
        assert lab.store.stats.misses == 2
        assert not (code.cpis == heap.cpis).all()


class TestLaboratoryStore:
    def test_second_lab_measures_nothing_and_is_bit_equal(self, tmp_path):
        lab1 = Laboratory(scale=TINY, machine_seed=7, cache_dir=tmp_path)
        a = lab1.observations("456.hmmer")
        assert lab1.store.stats.layouts_measured == TINY.n_layouts

        lab2 = Laboratory(scale=TINY, machine_seed=7, cache_dir=tmp_path)
        b = lab2.observations("456.hmmer")
        assert lab2.store.stats.layouts_measured == 0
        assert lab2.store.stats.hits == 1
        assert (a.cpis == b.cpis).all()
        assert (a.mpkis == b.mpkis).all()
        for x, y in zip(a, b):
            assert x.layout_index == y.layout_index
            assert x.layout_seed == y.layout_seed

    def test_campaign_log_records_source(self, tmp_path):
        lab1 = Laboratory(scale=TINY, machine_seed=7, cache_dir=tmp_path)
        lab1.observations("456.hmmer")
        assert lab1.campaign_log[-1].source == "measured"
        assert lab1.campaign_log[-1].layouts_per_second > 0

        lab2 = Laboratory(scale=TINY, machine_seed=7, cache_dir=tmp_path)
        lab2.observations("456.hmmer")
        assert lab2.campaign_log[-1].source == "cache"
        assert lab2.campaign_log[-1].measured == 0

    def test_store_survives_cache_larger_than_requested(self, tmp_path):
        big = Scale(
            name="tiny8", n_layouts=8, trace_events=2500,
            mase_trace_events=2000, mase_configs=5, ltage_layouts=4,
        )
        Laboratory(scale=big, machine_seed=7, cache_dir=tmp_path).observations(
            "456.hmmer"
        )
        small_lab = Laboratory(scale=TINY, machine_seed=7, cache_dir=tmp_path)
        obs = small_lab.observations("456.hmmer")
        assert len(obs) == TINY.n_layouts
        assert small_lab.store.stats.hits == 1
        assert small_lab.store.stats.layouts_measured == 0


class TestParallelLaboratory:
    def test_workers_bit_identical_to_serial(self):
        serial = Laboratory(scale=TINY, machine_seed=7)
        parallel = Laboratory(scale=TINY, machine_seed=7, workers=2)
        names = ["456.hmmer", "445.gobmk"]
        parallel.prefetch(names)
        for name in names:
            a = serial.observations(name)
            b = parallel.observations(name)
            assert (a.cpis == b.cpis).all()
            assert (a.mpkis == b.mpkis).all()
            assert [o.layout_seed for o in a] == [o.layout_seed for o in b]

    def test_prefetch_serial_path_populates_cache(self):
        lab = Laboratory(scale=TINY, machine_seed=7)
        lab.prefetch(["456.hmmer"], workers=0)
        assert "456.hmmer" in lab._observations

    def test_prefetch_resumes_partial_store(self, tmp_path):
        store_lab = Laboratory(scale=TINY, machine_seed=7, cache_dir=tmp_path)
        key = store_lab._campaign_key("456.hmmer", heap=False)
        # persist only a 2-layout prefix
        prefix = store_lab.interferometer.observe(
            store_lab.benchmark("456.hmmer"), n_layouts=2
        )
        store_lab.store.save(key, prefix)

        lab = Laboratory(scale=TINY, machine_seed=7, cache_dir=tmp_path)
        lab.prefetch(["456.hmmer"], workers=2)
        obs = lab.observations("456.hmmer")
        assert len(obs) == TINY.n_layouts
        assert lab.store.stats.layouts_measured == TINY.n_layouts - 2
        serial = Laboratory(scale=TINY, machine_seed=7)
        assert (serial.observations("456.hmmer").cpis == obs.cpis).all()

    def test_negative_workers_rejected(self):
        with pytest.raises(ConfigurationError):
            Laboratory(scale=TINY, machine_seed=7, workers=-1)
        lab = Laboratory(scale=TINY, machine_seed=7)
        with pytest.raises(ConfigurationError):
            lab.prefetch(["456.hmmer"], workers=-2)


class TestEscalationWithStore:
    def test_escalation_resumes_from_store(self, tmp_path, machine, monkeypatch):
        interferometer = Interferometer(machine, trace_events=2500)
        benchmark = get_benchmark("445.gobmk")

        store = CampaignStore(tmp_path)
        first = SampleEscalation(
            interferometer, batch=6, max_samples=12, store=store
        ).run(benchmark)
        assert len(first.observations) >= 6

        measured = []
        original = Interferometer.observe_one

        def counting(self, bench, index):
            measured.append(index)
            return original(self, bench, index)

        monkeypatch.setattr(Interferometer, "observe_one", counting)
        second = SampleEscalation(
            interferometer, batch=6, max_samples=12, store=CampaignStore(tmp_path)
        ).run(benchmark)
        assert measured == []  # cached campaign re-used, nothing re-measured
        assert second.significant == first.significant
        assert (
            second.observations.cpis[: len(first.observations)]
            == first.observations.cpis
        ).all()

    def test_escalation_persists_incrementally(self, tmp_path, machine):
        interferometer = Interferometer(machine, trace_events=2500)
        benchmark = get_benchmark("470.lbm")  # insensitive: exhausts budget
        store = CampaignStore(tmp_path)
        result = SampleEscalation(
            interferometer, batch=4, max_samples=8, store=store
        ).run(benchmark)
        key = CampaignKey.for_interferometer(interferometer, benchmark.name)
        stored = CampaignStore(tmp_path).load(key)
        assert stored is not None
        assert len(stored) == result.samples_used


class TestStoreStatsThreadSafety:
    """The serving layer mutates one store's stats from executor threads
    while the event loop reads them; every increment must survive."""

    def test_concurrent_recording_loses_no_counts(self):
        import threading

        from repro.store import StoreStats

        stats = StoreStats()
        workers, rounds = 8, 500
        barrier = threading.Barrier(workers)

        def hammer() -> None:
            barrier.wait()
            for _ in range(rounds):
                stats.record_hit(layouts=2)
                stats.record_miss(loaded=1, measured=3)
                stats.record_quarantine()

        threads = [threading.Thread(target=hammer) for _ in range(workers)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        total = workers * rounds
        assert stats.hits == total
        assert stats.misses == total
        assert stats.quarantined == total
        assert stats.layouts_loaded == 3 * total
        assert stats.layouts_measured == 3 * total

    def test_snapshot_is_consistent_under_concurrent_writes(self):
        import threading

        from repro.store import StoreStats

        stats = StoreStats()
        stop = threading.Event()

        def writer() -> None:
            while not stop.is_set():
                stats.record_hit(layouts=1)

        thread = threading.Thread(target=writer)
        thread.start()
        try:
            for _ in range(200):
                view = stats.snapshot()
                # hits and layouts_loaded move in lockstep inside one
                # critical section; a snapshot may never observe a gap.
                assert view["hits"] == view["layouts_loaded"]
        finally:
            stop.set()
            thread.join()
