"""Tests for t-tests and the F-test."""

from __future__ import annotations

import numpy as np
import pytest
from scipy import stats as scipy_stats

from repro.errors import ModelError
from repro.stats.hypothesis_tests import (
    f_test_regression,
    t_test_correlation,
    t_test_slope,
)
from repro.stats.regression import fit_multiple, fit_simple


def _correlated(n=40, noise=0.5, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.uniform(0, 10, n)
    y = 2.0 * x + rng.normal(0, noise, n)
    return x, y


def _uncorrelated(n=40, seed=1):
    rng = np.random.default_rng(seed)
    return rng.normal(0, 1, n), rng.normal(0, 1, n)


class TestCorrelationTTest:
    def test_correlated_rejects_null(self):
        x, y = _correlated()
        assert t_test_correlation(x, y).rejects_null(0.05)

    def test_uncorrelated_fails_to_reject(self):
        x, y = _uncorrelated()
        assert not t_test_correlation(x, y).rejects_null(0.05)

    def test_matches_scipy_pearsonr(self):
        x, y = _correlated(noise=5.0, seed=2)
        ours = t_test_correlation(x, y)
        theirs = scipy_stats.pearsonr(x, y)
        assert ours.p_value == pytest.approx(theirs.pvalue, rel=1e-9)

    def test_perfect_correlation_p_zero(self):
        x = np.arange(10, dtype=float)
        result = t_test_correlation(x, 2.0 * x)
        assert result.p_value == 0.0

    def test_dof(self):
        x, y = _correlated(n=25)
        assert t_test_correlation(x, y).dof == 23

    def test_too_few_points(self):
        with pytest.raises(ModelError):
            t_test_correlation([1.0, 2.0], [1.0, 2.0])

    def test_bad_alpha_rejected(self):
        x, y = _correlated()
        with pytest.raises(ModelError):
            t_test_correlation(x, y).rejects_null(alpha=0.0)


class TestSlopeTTest:
    def test_equivalent_to_correlation_test(self):
        x, y = _correlated(noise=3.0, seed=3)
        corr = t_test_correlation(x, y)
        slope = t_test_slope(fit_simple(x, y))
        assert slope.statistic == pytest.approx(corr.statistic, rel=1e-9)
        assert slope.p_value == pytest.approx(corr.p_value, rel=1e-9)

    def test_null_slope_shifts_statistic(self):
        x, y = _correlated(noise=0.1)
        fit = fit_simple(x, y)
        near_true = t_test_slope(fit, null_slope=2.0)
        far = t_test_slope(fit, null_slope=0.0)
        assert abs(near_true.statistic) < abs(far.statistic)
        assert not near_true.rejects_null(0.05)


class TestFTest:
    def test_strong_model_rejects(self):
        rng = np.random.default_rng(4)
        x1 = rng.uniform(0, 5, 50)
        x2 = rng.uniform(0, 5, 50)
        y = 2.0 * x1 - x2 + rng.normal(0, 0.2, 50)
        result = f_test_regression(fit_multiple([x1, x2], y))
        assert result.rejects_null(0.05)
        assert result.dof_model == 2
        assert result.dof_residual == 47

    def test_noise_model_fails_to_reject(self):
        rng = np.random.default_rng(5)
        x1 = rng.normal(0, 1, 40)
        x2 = rng.normal(0, 1, 40)
        y = rng.normal(0, 1, 40)
        result = f_test_regression(fit_multiple([x1, x2], y))
        assert not result.rejects_null(0.05)

    def test_f_matches_r2_identity(self):
        rng = np.random.default_rng(6)
        x1 = rng.uniform(0, 5, 30)
        y = x1 + rng.normal(0, 1.0, 30)
        fit = fit_multiple([x1], y)
        result = f_test_regression(fit)
        r2 = fit.r_squared
        expected = (r2 / 1) / ((1 - r2) / (30 - 2))
        assert result.statistic == pytest.approx(expected)

    def test_single_regressor_f_equals_t_squared(self):
        x, y = _correlated(noise=2.0, seed=7)
        t_result = t_test_correlation(x, y)
        f_result = f_test_regression(fit_multiple([x], y))
        assert f_result.statistic == pytest.approx(t_result.statistic**2, rel=1e-9)
        assert f_result.p_value == pytest.approx(t_result.p_value, rel=1e-6)

    def test_perfect_fit_p_tiny(self):
        x = np.arange(10, dtype=float)
        result = f_test_regression(fit_multiple([x], 3.0 * x + 1.0))
        assert result.p_value < 1e-50
