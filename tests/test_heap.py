"""Tests for the heap allocators."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.heap.diehard import DieHardAllocator, SequentialAllocator

from tests.conftest import make_tiny_spec


@pytest.fixture(scope="module")
def spec():
    return make_tiny_spec()


class TestSequential:
    def test_no_overlap(self, spec):
        layout = SequentialAllocator().allocate(spec)
        layout.validate_no_overlap(spec)

    def test_seed_ignored(self, spec):
        a = SequentialAllocator().allocate(spec, seed=1)
        b = SequentialAllocator().allocate(spec, seed=2)
        assert list(a.object_base) == list(b.object_base)

    def test_declaration_order(self, spec):
        layout = SequentialAllocator().allocate(spec)
        bases = list(layout.object_base)
        assert bases == sorted(bases)

    def test_alignment(self, spec):
        layout = SequentialAllocator().allocate(spec)
        assert all(base % 64 == 0 for base in layout.object_base)

    def test_heap_limit(self, spec):
        layout = SequentialAllocator().allocate(spec)
        total = sum(obj.size_bytes for obj in spec.heap_objects)
        assert layout.heap_limit - layout.heap_base >= total


class TestDieHard:
    def test_no_overlap(self, spec):
        layout = DieHardAllocator().allocate(spec, seed=1)
        layout.validate_no_overlap(spec)

    def test_deterministic_per_seed(self, spec):
        a = DieHardAllocator().allocate(spec, seed=5)
        b = DieHardAllocator().allocate(spec, seed=5)
        assert list(a.object_base) == list(b.object_base)

    def test_seeds_differ(self, spec):
        placements = {
            tuple(DieHardAllocator().allocate(spec, seed=s).object_base)
            for s in range(10)
        }
        assert len(placements) > 5

    def test_alignment(self, spec):
        layout = DieHardAllocator().allocate(spec, seed=2)
        assert all(base % 64 == 0 for base in layout.object_base)

    def test_set_mapping_varies(self, spec):
        """Placement jitter must move objects across cache sets."""
        sets_seen = set()
        for seed in range(20):
            layout = DieHardAllocator().allocate(spec, seed=seed)
            sets_seen.add((int(layout.object_base[0]) >> 6) & 63)
        assert len(sets_seen) > 3

    def test_overprovision_validation(self):
        with pytest.raises(ConfigurationError):
            DieHardAllocator(overprovision=0.5)

    def test_objects_within_heap(self, spec):
        layout = DieHardAllocator().allocate(spec, seed=3)
        for i, obj in enumerate(spec.heap_objects):
            assert layout.heap_base <= layout.object_base[i]
            assert layout.object_base[i] + obj.size_bytes <= layout.heap_limit

    def test_allocator_names(self, spec):
        assert SequentialAllocator().allocate(spec).allocator == "sequential"
        assert DieHardAllocator().allocate(spec, seed=0).allocator == "diehard"


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=50, deadline=None)
def test_property_diehard_never_overlaps(seed):
    spec = make_tiny_spec()
    layout = DieHardAllocator(overprovision=2.0).allocate(spec, seed=seed)
    layout.validate_no_overlap(spec)
