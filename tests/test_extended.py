"""Tests for the extended predictor study harness."""

from __future__ import annotations

from repro.harness import extended


class TestExtendedStudy:
    def test_structure(self, lab):
        result = extended.run(lab, benchmarks=("445.gobmk",), n_layouts=4)
        rows = result.rows_for("445.gobmk")
        assert {row.predictor for row in rows} == {
            "tournament", "perceptron", "agree", "bimode", "gskew", "TAGE",
        }
        for row in rows:
            assert row.mean_mpki > 0
            assert row.pi_low <= row.predicted_cpi <= row.pi_high

    def test_predicted_cpi_monotone_in_mpki(self, lab):
        result = extended.run(lab, benchmarks=("445.gobmk",), n_layouts=4)
        rows = result.rows_for("445.gobmk")  # sorted by MPKI
        cpis = [row.predicted_cpi for row in rows]
        assert cpis == sorted(cpis)

    def test_sensitivity_ranking_includes_real(self, lab):
        result = extended.run(lab, benchmarks=("445.gobmk",), n_layouts=4)
        ranking = result.sensitivity_ranking("445.gobmk")
        names = [name for name, _ in ranking]
        assert "real (hybrid)" in names
        spreads = [spread for _, spread in ranking]
        assert spreads == sorted(spreads, reverse=True)

    def test_render(self, lab):
        result = extended.run(lab, benchmarks=("445.gobmk",), n_layouts=4)
        text = result.render()
        assert "Extended predictor study" in text
        assert "445.gobmk" in text
