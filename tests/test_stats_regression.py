"""Tests for simple and multiple least-squares regression."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ModelError
from repro.stats.correlation import coefficient_of_determination, pearson_r
from repro.stats.regression import fit_multiple, fit_simple


def _linear_data(slope=2.0, intercept=1.0, n=50, noise=0.1, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.uniform(0, 10, n)
    y = slope * x + intercept + rng.normal(0, noise, n)
    return x, y


class TestSimpleFit:
    def test_exact_line_recovered(self):
        x = np.array([0.0, 1.0, 2.0, 3.0])
        y = 3.0 * x + 0.5
        fit = fit_simple(x, y)
        assert fit.slope == pytest.approx(3.0)
        assert fit.intercept == pytest.approx(0.5)
        assert fit.r_squared == pytest.approx(1.0)

    def test_matches_numpy_polyfit(self):
        x, y = _linear_data(noise=1.0)
        fit = fit_simple(x, y)
        slope, intercept = np.polyfit(x, y, 1)
        assert fit.slope == pytest.approx(slope)
        assert fit.intercept == pytest.approx(intercept)

    def test_residuals_orthogonal_to_x(self):
        x, y = _linear_data(noise=2.0, seed=3)
        fit = fit_simple(x, y)
        residuals = y - fit.predict_many(x)
        assert float(np.dot(residuals, x - x.mean())) == pytest.approx(0.0, abs=1e-8)

    def test_residuals_sum_to_zero(self):
        x, y = _linear_data(noise=2.0, seed=4)
        fit = fit_simple(x, y)
        residuals = y - fit.predict_many(x)
        assert float(residuals.sum()) == pytest.approx(0.0, abs=1e-8)

    def test_r_squared_equals_correlation_squared(self):
        x, y = _linear_data(noise=3.0, seed=5)
        fit = fit_simple(x, y)
        assert fit.r_squared == pytest.approx(coefficient_of_determination(x, y))

    def test_predict(self):
        x, y = _linear_data(slope=2.0, intercept=1.0, noise=0.0)
        fit = fit_simple(x, y)
        assert fit.predict(4.0) == pytest.approx(9.0)

    def test_too_few_points_rejected(self):
        with pytest.raises(ModelError):
            fit_simple([1.0, 2.0], [1.0, 2.0])

    def test_zero_variance_x_rejected(self):
        with pytest.raises(ModelError):
            fit_simple([2.0, 2.0, 2.0], [1.0, 2.0, 3.0])

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ModelError):
            fit_simple([1.0, 2.0, 3.0], [1.0, 2.0])

    def test_nan_rejected(self):
        with pytest.raises(ModelError):
            fit_simple([1.0, float("nan"), 3.0], [1.0, 2.0, 3.0])

    def test_slope_stderr_positive(self):
        x, y = _linear_data(noise=1.0)
        assert fit_simple(x, y).slope_stderr > 0.0


class TestMultipleFit:
    def test_exact_plane_recovered(self):
        rng = np.random.default_rng(1)
        x1 = rng.uniform(0, 5, 40)
        x2 = rng.uniform(0, 5, 40)
        y = 2.0 * x1 - 1.5 * x2 + 4.0
        fit = fit_multiple([x1, x2], y, names=["a", "b"])
        assert fit.intercept == pytest.approx(4.0)
        assert fit.coefficient("a") == pytest.approx(2.0)
        assert fit.coefficient("b") == pytest.approx(-1.5)
        assert fit.r_squared == pytest.approx(1.0)

    def test_matches_numpy_lstsq(self):
        rng = np.random.default_rng(2)
        x1 = rng.uniform(0, 5, 60)
        x2 = rng.uniform(0, 5, 60)
        y = 1.0 * x1 + 0.5 * x2 + rng.normal(0, 0.5, 60)
        fit = fit_multiple([x1, x2], y)
        design = np.column_stack([np.ones(60), x1, x2])
        beta, *_ = np.linalg.lstsq(design, y, rcond=None)
        assert np.allclose(fit.coefficients, beta)

    def test_single_column_matches_simple(self):
        x, y = _linear_data(noise=1.0, seed=6)
        multi = fit_multiple([x], y)
        simple = fit_simple(x, y)
        assert multi.intercept == pytest.approx(simple.intercept)
        assert float(multi.coefficients[1]) == pytest.approx(simple.slope)
        assert multi.r_squared == pytest.approx(simple.r_squared)

    def test_collinear_rejected(self):
        x = np.arange(10, dtype=float)
        with pytest.raises(ModelError):
            fit_multiple([x, 2.0 * x], x)

    def test_unknown_regressor_name(self):
        x, y = _linear_data()
        fit = fit_multiple([x], y, names=["mpki"])
        with pytest.raises(ModelError):
            fit.coefficient("nope")

    def test_predict_requires_k_values(self):
        x, y = _linear_data()
        fit = fit_multiple([x], y)
        with pytest.raises(ModelError):
            fit.predict([1.0, 2.0])

    def test_no_columns_rejected(self):
        with pytest.raises(ModelError):
            fit_multiple([], [1.0, 2.0, 3.0])

    def test_adding_regressor_never_lowers_r2(self):
        rng = np.random.default_rng(7)
        x1 = rng.uniform(0, 5, 50)
        x2 = rng.uniform(0, 5, 50)
        y = x1 + rng.normal(0, 1.0, 50)
        r2_one = fit_multiple([x1], y).r_squared
        r2_two = fit_multiple([x1, x2], y).r_squared
        assert r2_two >= r2_one - 1e-12


class TestCorrelation:
    def test_perfect_positive(self):
        assert pearson_r([1, 2, 3], [2, 4, 6]) == pytest.approx(1.0)

    def test_perfect_negative(self):
        assert pearson_r([1, 2, 3], [6, 4, 2]) == pytest.approx(-1.0)

    def test_matches_numpy(self):
        x, y = _linear_data(noise=5.0, seed=8)
        assert pearson_r(x, y) == pytest.approx(float(np.corrcoef(x, y)[0, 1]))

    def test_zero_variance_rejected(self):
        with pytest.raises(ModelError):
            pearson_r([1.0, 1.0, 1.0], [1.0, 2.0, 3.0])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ModelError):
            pearson_r([1.0, 2.0], [1.0, 2.0, 3.0])


@given(
    slope=st.floats(min_value=-50, max_value=50, allow_nan=False),
    intercept=st.floats(min_value=-50, max_value=50, allow_nan=False),
    seed=st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=60, deadline=None)
def test_property_noiseless_fit_exact(slope, intercept, seed):
    rng = np.random.default_rng(seed)
    x = rng.uniform(-10, 10, 20)
    if np.std(x) < 1e-6:
        return
    y = slope * x + intercept
    fit = fit_simple(x, y)
    assert fit.slope == pytest.approx(slope, abs=1e-6, rel=1e-6)
    assert fit.intercept == pytest.approx(intercept, abs=1e-5, rel=1e-5)


@given(seed=st.integers(min_value=0, max_value=500))
@settings(max_examples=40, deadline=None)
def test_property_r_bounded(seed):
    rng = np.random.default_rng(seed)
    x = rng.normal(0, 1, 30)
    y = rng.normal(0, 1, 30)
    assert -1.0 <= pearson_r(x, y) <= 1.0
