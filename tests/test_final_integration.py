"""Last-mile integration checks across the newest subsystems."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import main
from repro.persistence import load_trace, save_trace
from repro.program.tracegen import generate_trace

from tests.test_indirect import make_dispatch_spec


class TestIndirectTraceRoundTrip:
    def test_targets_survive_npz(self, tmp_path):
        spec = make_dispatch_spec()
        trace = generate_trace(spec, seed=5, n_events=600)
        path = tmp_path / "dispatch.npz"
        save_trace(trace, path)
        reloaded = load_trace(path)
        assert (reloaded.targets == trace.targets).all()
        assert (reloaded.targets >= 0).any()

    def test_truncation_preserves_target_alignment(self):
        spec = make_dispatch_spec()
        trace = generate_trace(spec, seed=5, n_events=600)
        short = trace.truncated(300)
        assert (short.targets == trace.targets[:300]).all()
        # Indirect events stay attached to their dispatch site.
        dispatch_gid = 0  # first site of the first procedure
        mask = short.site_ids == dispatch_gid
        assert (short.targets[mask] >= 0).all()
        assert (short.targets[~mask] == -1).all()


class TestCliMulti:
    def test_multiple_experiments_one_lab(self, capsys, monkeypatch):
        from repro.harness import lab as lab_module

        monkeypatch.setenv("REPRO_SCALE", "ci")
        lab_module.reset_lab()
        try:
            assert main(["headline", "table1"]) == 0
            out = capsys.readouterr().out
            assert "=== headline" in out
            assert "=== table1" in out
        finally:
            lab_module.reset_lab()


class TestEndToEndNormality:
    def test_most_benchmark_residuals_roughly_normal(self, lab):
        """§5.8: 'the observed CPI of most of the benchmarks roughly
        follow a normal distribution'."""
        normal = 0
        names = lab.significant_benchmarks()[:8]
        for name in names:
            result = lab.model(name).residual_normality()
            if result.looks_normal(alpha=0.01):
                normal += 1
        assert normal >= len(names) - 2
