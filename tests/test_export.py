"""Tests for the CSV figure exporter."""

from __future__ import annotations

import csv

import pytest

from repro.harness.export import export_all


@pytest.fixture(scope="module")
def exported(lab, tmp_path_factory):
    directory = tmp_path_factory.mktemp("export")
    paths = export_all(lab, directory)
    return directory, paths


def _read(path):
    with open(path, newline="") as handle:
        return list(csv.reader(handle))


class TestExport:
    def test_all_files_written(self, exported):
        directory, paths = exported
        names = {p.name for p in paths}
        for expected in (
            "fig1_violins.csv",
            "fig2_400_perlbench_points.csv",
            "fig2_400_perlbench_band.csv",
            "fig3_cache_points.csv",
            "fig4_errors.csv",
            "fig5_points.csv",
            "fig6_blame.csv",
            "fig7_mpki.csv",
            "fig8_cpi.csv",
            "table1.csv",
        ):
            assert expected in names
        for path in paths:
            assert path.exists()

    def test_fig1_long_format(self, exported):
        directory, _ = exported
        rows = _read(directory / "fig1_violins.csv")
        assert rows[0] == ["benchmark", "percent_deviation", "density"]
        benchmarks = {row[0] for row in rows[1:]}
        assert len(benchmarks) == 23
        assert all(float(row[2]) >= 0.0 for row in rows[1:])

    def test_fig2_band_ordering(self, exported):
        directory, _ = exported
        rows = _read(directory / "fig2_400_perlbench_band.csv")
        for row in rows[1:]:
            _, line, ci_low, ci_high, pi_low, pi_high = map(float, row)
            assert pi_low <= ci_low <= line <= ci_high <= pi_high

    def test_fig2_points_match_campaign(self, exported, lab):
        directory, _ = exported
        rows = _read(directory / "fig2_400_perlbench_points.csv")
        assert len(rows) - 1 == lab.scale.n_layouts

    def test_fig7_predictor_coverage(self, exported):
        directory, _ = exported
        rows = _read(directory / "fig7_mpki.csv")
        predictors = {row[1] for row in rows[1:]}
        assert {"real", "GAs-2KB", "GAs-16KB", "L-TAGE", "perfect"} <= predictors

    def test_fig8_intervals(self, exported):
        directory, _ = exported
        rows = _read(directory / "fig8_cpi.csv")
        for row in rows[1:]:
            cpi, low, high = float(row[2]), float(row[3]), float(row[4])
            assert low <= cpi <= high

    def test_table1_columns(self, exported):
        directory, _ = exported
        rows = _read(directory / "table1.csv")
        assert rows[0][:3] == ["benchmark", "slope", "intercept"]
        assert all(float(row[1]) > 0 for row in rows[1:])
