"""Tests for canonical trace generation."""

from __future__ import annotations

import numpy as np
import pytest

from repro import units
from repro.errors import ConfigurationError
from repro.program.tracegen import generate_trace

from tests.conftest import make_tiny_spec


class TestGeneration:
    def test_requested_length(self, tiny_trace):
        assert tiny_trace.n_events == 1200
        assert tiny_trace.site_ids.shape == (1200,)
        assert tiny_trace.outcomes.shape == (1200,)

    def test_deterministic(self, tiny_spec):
        a = generate_trace(tiny_spec, seed=42, n_events=500)
        b = generate_trace(tiny_spec, seed=42, n_events=500)
        assert (a.site_ids == b.site_ids).all()
        assert (a.outcomes == b.outcomes).all()
        assert (a.dacc_offset == b.dacc_offset).all()
        assert (a.iacc_offset == b.iacc_offset).all()

    def test_different_seed_differs(self, tiny_spec):
        a = generate_trace(tiny_spec, seed=42, n_events=500)
        b = generate_trace(tiny_spec, seed=43, n_events=500)
        assert not (
            (a.site_ids == b.site_ids).all() and (a.outcomes == b.outcomes).all()
        )

    def test_site_ids_valid(self, tiny_spec, tiny_trace):
        assert tiny_trace.site_ids.min() >= 0
        assert tiny_trace.site_ids.max() < tiny_spec.n_sites

    def test_outcomes_binary(self, tiny_trace):
        assert set(np.unique(tiny_trace.outcomes)) <= {0, 1}

    def test_invalid_length(self, tiny_spec):
        with pytest.raises(ConfigurationError):
            generate_trace(tiny_spec, seed=1, n_events=0)

    def test_site_tables_consistent(self, tiny_spec, tiny_trace):
        table = tiny_spec.site_table()
        for gid, (proc_idx, site) in enumerate(table):
            assert tiny_trace.site_proc[gid] == proc_idx
            assert tiny_trace.site_offset[gid] == site.offset
            assert tiny_trace.site_instr_gap[gid] == site.instr_gap


class TestInstructionAccounting:
    def test_total_instructions(self, tiny_trace):
        gaps = tiny_trace.site_instr_gap[tiny_trace.site_ids]
        assert tiny_trace.total_instructions == int(gaps.sum()) + tiny_trace.n_events

    def test_instructions_up_to(self, tiny_trace):
        assert tiny_trace.instructions_up_to(0) == 0
        assert (
            tiny_trace.instructions_up_to(tiny_trace.n_events)
            == tiny_trace.total_instructions
        )
        mid = tiny_trace.instructions_up_to(600)
        assert 0 < mid < tiny_trace.total_instructions

    def test_instructions_monotonic(self, tiny_trace):
        values = [tiny_trace.instructions_up_to(k) for k in range(0, 1200, 100)]
        assert values == sorted(values)

    def test_instructions_before_event(self, tiny_trace):
        before = tiny_trace.instructions_before_event
        assert before[0] == 0
        assert (np.diff(before) > 0).all()

    def test_branch_density(self, tiny_trace):
        density = tiny_trace.branch_density_per_kilo_instruction
        # instr_gap=5 everywhere -> 1 branch per 6 instructions.
        assert density == pytest.approx(units.PER_KILO / 6.0, rel=0.01)


class TestAccessStreams:
    def test_iacc_events_sorted(self, tiny_trace):
        assert (np.diff(tiny_trace.iacc_event) >= 0).all()

    def test_dacc_events_sorted(self, tiny_trace):
        assert (np.diff(tiny_trace.dacc_event) >= 0).all()

    def test_iacc_events_in_range(self, tiny_trace):
        assert tiny_trace.iacc_event.min() >= 0
        assert tiny_trace.iacc_event.max() < tiny_trace.n_events

    def test_every_event_fetches(self, tiny_trace):
        # Each branch event touches at least one fetch block.
        assert len(np.unique(tiny_trace.iacc_event)) == tiny_trace.n_events

    def test_dacc_objects_valid(self, tiny_spec, tiny_trace):
        if tiny_trace.dacc_obj.size:
            assert tiny_trace.dacc_obj.min() >= 0
            assert tiny_trace.dacc_obj.max() < len(tiny_spec.heap_objects)

    def test_dacc_offsets_within_objects(self, tiny_spec, tiny_trace):
        sizes = np.array([obj.size_bytes for obj in tiny_spec.heap_objects])
        assert (tiny_trace.dacc_offset >= 0).all()
        assert (tiny_trace.dacc_offset < sizes[tiny_trace.dacc_obj]).all()

    def test_dacc_offsets_aligned(self, tiny_trace):
        assert (tiny_trace.dacc_offset % 8 == 0).all()


class TestActivations:
    def test_activation_bounds(self, tiny_trace):
        starts = tiny_trace.activation_start
        assert starts[0] == 0
        assert starts[-1] == tiny_trace.n_events
        assert (np.diff(starts) >= 0).all()

    def test_activation_procs_valid(self, tiny_spec, tiny_trace):
        assert tiny_trace.activation_proc.min() >= 0
        assert tiny_trace.activation_proc.max() < len(tiny_spec.procedures)

    def test_events_belong_to_activation_proc(self, tiny_trace):
        starts = tiny_trace.activation_start
        for k in range(min(50, len(tiny_trace.activation_proc))):
            lo, hi = starts[k], starts[k + 1]
            if hi > lo:
                procs = tiny_trace.site_proc[tiny_trace.site_ids[lo:hi]]
                assert (procs == tiny_trace.activation_proc[k]).all()


class TestTruncation:
    def test_truncated_lengths(self, tiny_trace):
        short = tiny_trace.truncated(700)
        assert short.n_events == 700
        assert short.site_ids.shape == (700,)
        assert (short.site_ids == tiny_trace.site_ids[:700]).all()

    def test_truncated_access_streams_filtered(self, tiny_trace):
        short = tiny_trace.truncated(700)
        assert short.iacc_event.max() < 700
        if short.dacc_event.size:
            assert short.dacc_event.max() < 700

    def test_truncated_activations(self, tiny_trace):
        short = tiny_trace.truncated(700)
        assert short.activation_start[-1] == 700
        assert (short.activation_start[:-1] < 700).all()

    def test_truncate_beyond_length_is_identity(self, tiny_trace):
        assert tiny_trace.truncated(10_000) is tiny_trace

    def test_truncate_to_zero_rejected(self, tiny_trace):
        with pytest.raises(ConfigurationError):
            tiny_trace.truncated(0)

    def test_truncated_instructions_consistent(self, tiny_trace):
        short = tiny_trace.truncated(700)
        assert short.total_instructions == tiny_trace.instructions_up_to(700)
