"""Tests for cache interferometry (Figure 3 machinery)."""

from __future__ import annotations

import pytest

from repro.core.cache_exp import run_cache_interferometry
from repro.workloads.suite import get_benchmark


@pytest.fixture(scope="module")
def result(machine):
    return run_cache_interferometry(
        machine, get_benchmark("454.calculix"), n_layouts=10, trace_events=3000
    )


class TestCacheInterferometry:
    def test_models_built(self, result):
        assert result.l1_model.x_metric == "l1d_mpki"
        assert result.l2_model.x_metric == "l2_mpki"
        assert result.benchmark == "454.calculix"

    def test_heap_randomization_applied(self, result):
        seeds = {obs.heap_seed for obs in result.observations}
        assert None not in seeds
        assert len(seeds) == len(result.observations)

    def test_l1_misses_vary(self, result):
        assert result.observations.series("l1d_mpki").std() > 0.0

    def test_positive_cache_cost(self, result):
        """More L1D misses should cost cycles (positive slope)."""
        assert result.l1_model.slope > 0.0

    def test_models_share_observations(self, result):
        assert (result.l1_model.y_values == result.l2_model.y_values).all()
