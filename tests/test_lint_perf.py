"""The perf lint pack: the hot-path model and PERF001-PERF004.

A hypothesis property pins the hot-scope reachability's monotonicity
(adding call edges can only grow the hot set, never shrink it),
fixture tests demonstrate each rule's true positives and true
negatives — including the scalar-guard and chunk-dispatch exemptions
that make the engine contract expressible without suppressions — and
the mutation check the issue demands proves that re-introducing a
per-event ``_run`` loop into ``bimode.py`` produces PERF001 at the
exact mutated line while the sanctioned bulk fallback in ``base.py``
stays suppressed, not flagged.
"""

from __future__ import annotations

import ast
import contextlib
import io
import json
import re
from pathlib import Path

from hypothesis import given
from hypothesis import strategies as st

from repro.lint.callgraph import Program
from repro.lint.cli import main as lint_main
from repro.lint.perfflow import HotPathModel
from repro.lint.rules.base import annotate_parents

PERF_RULES = "PERF001,PERF002,PERF003,PERF004"
PERF_IDS = tuple(PERF_RULES.split(","))

REPO_ROOT = Path(__file__).resolve().parents[1]

#: Fixture module path — the PERF rules bind the measurement core, so
#: fixtures must live under a uarch/machine/mase segment.
REL = "src/repro/uarch/sim.py"


def run_cli(*argv):
    out, err = io.StringIO(), io.StringIO()
    with contextlib.redirect_stdout(out), contextlib.redirect_stderr(err):
        code = lint_main(list(argv))
    return code, out.getvalue(), err.getvalue()


def write_tree(tmp_path: Path, files: dict[str, str]) -> Path:
    for rel, source in files.items():
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source)
    return tmp_path


def lint_tree(tmp_path: Path, files: dict[str, str], rules: str = PERF_RULES):
    root = write_tree(tmp_path, files)
    return run_cli("--rules", rules, str(root))


def findings_json(
    tmp_path: Path, files: dict[str, str], rules: str = PERF_RULES
):
    root = write_tree(tmp_path, files)
    _, out, _ = run_cli("--rules", rules, "--json", str(root))
    return json.loads(out)


def structure(kernel_body: str, simulate_extra: str = "") -> str:
    """A contract-conforming structure with a configurable hot method.

    ``simulate`` is an engine entry point; ``_kernel`` is reachable
    from it outside the scalar guard (hot), ``_oracle`` only inside it
    (exempt by construction).
    """
    return (
        "import numpy as np\n"
        "\n"
        "from repro.uarch import vector\n"
        "\n"
        "\n"
        "class Structure:\n"
        '    def simulate(self, addresses, outcomes, engine="vector"):\n'
        "        vector.require_engine(engine)\n"
        f"{simulate_extra}"
        '        if engine == "scalar":\n'
        "            return self._oracle(addresses, outcomes)\n"
        "        return self._kernel(addresses, outcomes)\n"
        "\n"
        "    def _oracle(self, addresses, outcomes):\n"
        "        count = 0\n"
        "        for pc, outcome in zip(addresses.tolist(), outcomes.tolist()):\n"
        "            count += self._step(pc, outcome)\n"
        "        return count\n"
        "\n"
        "    def _step(self, pc, outcome):\n"
        "        return int(pc & 1) ^ outcome\n"
        "\n"
        "    def _kernel(self, addresses, outcomes):\n"
        f"{kernel_body}"
    )


CHUNKED_KERNEL = (
    "        total = 0\n"
    "        for start, stop in vector.iter_chunks(int(addresses.size)):\n"
    "            total += int(np.count_nonzero(outcomes[start:stop]))\n"
    "        return total\n"
)


# ----------------------------------------------------------------------
# Hot-scope reachability: monotone in the call-edge set.
# ----------------------------------------------------------------------

_N_FUNCS = 7
_edge = st.tuples(
    st.integers(0, _N_FUNCS - 1), st.integers(0, _N_FUNCS - 1)
)


def _call_graph_source(edges: frozenset[tuple[int, int]]) -> str:
    lines = []
    for i in range(_N_FUNCS):
        lines.append(f"def f{i}():")
        callees = sorted({b for a, b in edges if a == i})
        lines.extend(f"    f{j}()" for j in callees)
        if not callees:
            lines.append("    return None")
    lines.append("def simulate():")
    lines.append("    f0()")
    return "\n".join(lines) + "\n"


def _hot(edges: frozenset[tuple[int, int]]) -> frozenset[str]:
    source = _call_graph_source(edges)
    tree = ast.parse(source)
    annotate_parents(tree)
    program = Program.build(
        [("src/repro/uarch/m.py", tree, source.splitlines())]
    )
    return HotPathModel(program).hot


class TestHotScopeReachability:
    @given(
        base=st.frozensets(_edge, max_size=12),
        extra=st.frozensets(_edge, max_size=6),
    )
    def test_monotone_in_call_edges(self, base, extra):
        """hot(E) is contained in hot(E | E') for every edge set E'."""
        assert _hot(base) <= _hot(base | extra)

    @given(base=st.frozensets(_edge, max_size=12))
    def test_entry_point_always_hot(self, base):
        hot = _hot(base)
        assert any(q.endswith(".simulate") for q in hot)
        assert any(q.endswith(".f0") for q in hot)

    def test_scalar_guard_call_sites_are_cold(self, tmp_path):
        """_oracle is only reached through the scalar guard: not hot."""
        source = structure(CHUNKED_KERNEL)
        tree = ast.parse(source)
        annotate_parents(tree)
        program = Program.build([(REL, tree, source.splitlines())])
        model = HotPathModel(program)
        assert any(q.endswith("Structure._kernel") for q in model.hot)
        assert not any(q.endswith("Structure._oracle") for q in model.hot)


# ----------------------------------------------------------------------
# PERF001 — per-event loop on the hot path.
# ----------------------------------------------------------------------


class TestHotEventLoop:
    def test_conforming_structure_is_clean(self, tmp_path):
        code, out, _ = lint_tree(
            tmp_path, {REL: structure(CHUNKED_KERNEL)}, rules="PERF001"
        )
        assert code == 0, out

    def test_tolist_loop_in_hot_method_flags(self, tmp_path):
        kernel = (
            "        count = 0\n"
            "        for pc, outcome in zip(addresses.tolist(), outcomes.tolist()):\n"
            "            count += self._step(pc, outcome)\n"
            "        return count\n"
        )
        payload = findings_json(
            tmp_path, {REL: structure(kernel)}, rules="PERF001"
        )
        findings = payload["findings"]
        assert [f["rule"] for f in findings] == ["PERF001"]
        assert "Structure._kernel is hot" in findings[0]["message"]
        assert "kernel family" in findings[0]["message"]

    def test_trace_lexicon_parameter_loop_flags(self, tmp_path):
        kernel = (
            "        count = 0\n"
            "        for address in addresses:\n"
            "            count += int(address) & 1\n"
            "        return count\n"
        )
        code, out, _ = lint_tree(
            tmp_path, {REL: structure(kernel)}, rules="PERF001"
        )
        assert code == 1
        assert "PERF001" in out

    def test_oracle_loop_under_scalar_guard_is_exempt(self, tmp_path):
        # The conforming fixture's _oracle loops per event over
        # .tolist() streams — sanctioned, because every path to it
        # runs through the scalar-engine guard.
        payload = findings_json(
            tmp_path, {REL: structure(CHUNKED_KERNEL)}, rules="PERF001"
        )
        assert payload["findings"] == []
        assert payload["summary"]["suppressed"] == 0

    def test_same_shape_outside_measurement_core_is_out_of_scope(
        self, tmp_path
    ):
        kernel = (
            "        count = 0\n"
            "        for pc in addresses.tolist():\n"
            "            count += int(pc) & 1\n"
            "        return count\n"
        )
        code, out, _ = lint_tree(
            tmp_path,
            {"src/repro/report/sim.py": structure(kernel)},
            rules="PERF001",
        )
        assert code == 0, out


# ----------------------------------------------------------------------
# PERF002 — allocation inside a hot loop.
# ----------------------------------------------------------------------


class TestLoopAllocation:
    def test_allocation_in_hot_loop_flags(self, tmp_path):
        kernel = (
            "        total = 0\n"
            "        for round_no in range(8):\n"
            "            scratch = np.zeros(4, dtype=np.int64)\n"
            "            total += int(scratch.size) + round_no\n"
            "        return total\n"
        )
        payload = findings_json(
            tmp_path, {REL: structure(kernel)}, rules="PERF002"
        )
        findings = payload["findings"]
        assert [f["rule"] for f in findings] == ["PERF002"]
        assert "np.zeros" in findings[0]["message"]

    def test_chunk_dispatch_loop_is_exempt(self, tmp_path):
        # Kernels allocate per chunk by design; the dispatch loop
        # exists to bound working-set size.
        kernel = (
            "        total = 0\n"
            "        for start, stop in vector.iter_chunks(int(addresses.size)):\n"
            "            scratch = np.zeros(stop - start, dtype=np.int64)\n"
            "            total += int(scratch.size)\n"
            "        return total\n"
        )
        code, out, _ = lint_tree(
            tmp_path, {REL: structure(kernel)}, rules="PERF002"
        )
        assert code == 0, out

    def test_compute_ufuncs_are_not_allocations(self, tmp_path):
        # np.where is not something the author can hoist: never flags.
        kernel = (
            "        total = 0\n"
            "        for round_no in range(8):\n"
            "            total += int(np.count_nonzero(np.where(outcomes > round_no, 1, 0)))\n"
            "        return total\n"
        )
        code, out, _ = lint_tree(
            tmp_path, {REL: structure(kernel)}, rules="PERF002"
        )
        assert code == 0, out


# ----------------------------------------------------------------------
# PERF003 — loop-carried promote/cast-back churn.
# ----------------------------------------------------------------------


class TestDtypeChurn:
    def test_loop_carried_promote_cast_back_flags(self, tmp_path):
        kernel = (
            "        acc = np.zeros(8, dtype=np.int16)\n"
            "        wide = np.zeros(8, dtype=np.int64)\n"
            "        for round_no in range(4):\n"
            "            acc = (acc + wide).astype(np.int16)\n"
            "        return int(acc[0])\n"
        )
        payload = findings_json(
            tmp_path, {REL: structure(kernel)}, rules="PERF003"
        )
        findings = payload["findings"]
        assert [f["rule"] for f in findings] == ["PERF003"]
        message = findings[0]["message"]
        assert "'acc'" in message
        assert "int64" in message and "int16" in message

    def test_python_scalar_does_not_widen(self, tmp_path):
        # (acc + 1) stays in the array's dtype: no promotion, no churn.
        kernel = (
            "        acc = np.zeros(8, dtype=np.int16)\n"
            "        for round_no in range(4):\n"
            "            acc = (acc + 1).astype(np.int16)\n"
            "        return int(acc[0])\n"
        )
        code, out, _ = lint_tree(
            tmp_path, {REL: structure(kernel)}, rules="PERF003"
        )
        assert code == 0, out

    def test_one_shot_cast_is_not_loop_carried(self, tmp_path):
        # The cast's operand never reads the assigned name: PERF002's
        # beat (a copy in a loop), not a promote/cast-back cycle.
        kernel = (
            "        wide = np.zeros(8, dtype=np.int64)\n"
            "        total = 0\n"
            "        for round_no in range(4):\n"
            "            narrow = (wide + wide).astype(np.int16)\n"
            "            total += int(narrow[0])\n"
            "        return total\n"
        )
        code, out, _ = lint_tree(
            tmp_path, {REL: structure(kernel)}, rules="PERF003"
        )
        assert code == 0, out


# ----------------------------------------------------------------------
# PERF004 — engine-contract drift.
# ----------------------------------------------------------------------


def simulating(signature: str, body: str) -> str:
    return (
        "import numpy as np\n"
        "\n"
        "from repro.uarch import vector\n"
        "\n"
        "\n"
        "class Structure:\n"
        f"    def simulate({signature}):\n"
        f"{body}"
    )


class TestEngineContract:
    def test_missing_engine_knob_flags(self, tmp_path):
        source = simulating(
            "self, addresses, outcomes",
            "        return int(np.count_nonzero(outcomes))\n",
        )
        payload = findings_json(tmp_path, {REL: source}, rules="PERF004")
        findings = payload["findings"]
        assert [f["rule"] for f in findings] == ["PERF004"]
        assert "no engine knob" in findings[0]["message"]

    def test_scalar_default_flags(self, tmp_path):
        source = simulating(
            'self, addresses, outcomes, engine="scalar"',
            "        vector.require_engine(engine)\n"
            '        if engine == "scalar":\n'
            "            return 0\n"
            "        return 1\n",
        )
        payload = findings_json(tmp_path, {REL: source}, rules="PERF004")
        findings = payload["findings"]
        assert [f["rule"] for f in findings] == ["PERF004"]
        assert 'contract default is "vector"' in findings[0]["message"]

    def test_unconsulted_knob_flags(self, tmp_path):
        source = simulating(
            'self, addresses, outcomes, engine="vector"',
            "        return int(np.count_nonzero(outcomes))\n",
        )
        payload = findings_json(tmp_path, {REL: source}, rules="PERF004")
        findings = payload["findings"]
        assert [f["rule"] for f in findings] == ["PERF004"]
        assert "never consults" in findings[0]["message"]

    def test_conforming_structure_is_clean(self, tmp_path):
        code, out, _ = lint_tree(
            tmp_path, {REL: structure(CHUNKED_KERNEL)}, rules="PERF004"
        )
        assert code == 0, out

    def test_kwargs_signature_is_unknown_not_flagged(self, tmp_path):
        source = simulating(
            "self, addresses, outcomes, **kwargs",
            "        return int(np.count_nonzero(outcomes))\n",
        )
        code, out, _ = lint_tree(tmp_path, {REL: source}, rules="PERF004")
        assert code == 0, out


# ----------------------------------------------------------------------
# Mutation check: re-introduce the pre-conversion bimode loop.
# ----------------------------------------------------------------------

_MUTATION = (
    "\n"
    "\n"
    "class MutatedBiMode(BiModePredictor):\n"
    '    """The pre-conversion shape: a per-event trace interpreter."""\n'
    "\n"
    "    def _run(self, addresses, outcomes):\n"
    "        mispredicts = 0\n"
    "        for pc, outcome in zip(addresses.tolist(), outcomes.tolist()):\n"
    "            if not self.predict_and_update(int(pc), int(outcome)):\n"
    "                mispredicts += 1\n"
    "        return mispredicts\n"
)


class TestBimodeMutation:
    def test_shipped_predictor_sources_are_clean(self, tmp_path):
        files = {
            "src/repro/uarch/predictors/base.py": (
                REPO_ROOT / "src/repro/uarch/predictors/base.py"
            ).read_text(),
            "src/repro/uarch/predictors/bimode.py": (
                REPO_ROOT / "src/repro/uarch/predictors/bimode.py"
            ).read_text(),
        }
        payload = findings_json(tmp_path, files, rules="PERF001")
        assert payload["findings"] == []
        # base.py's bulk fallback is suppressed with a justification,
        # not invisible to the rule.
        assert payload["summary"]["suppressed"] >= 1

    def test_reintroduced_event_loop_flags_at_exact_line(self, tmp_path):
        bimode_src = (
            REPO_ROOT / "src/repro/uarch/predictors/bimode.py"
        ).read_text()
        mutated = bimode_src.rstrip("\n") + "\n" + _MUTATION
        files = {
            "src/repro/uarch/predictors/base.py": (
                REPO_ROOT / "src/repro/uarch/predictors/base.py"
            ).read_text(),
            "src/repro/uarch/predictors/bimode.py": mutated,
        }
        mutated_line = "        for pc, outcome in zip(addresses.tolist(), outcomes.tolist()):"
        expected_line = mutated.splitlines().index(mutated_line) + 1
        payload = findings_json(tmp_path, files, rules="PERF001")
        findings = payload["findings"]
        assert [f["rule"] for f in findings] == ["PERF001"]
        finding = findings[0]
        assert finding["path"].endswith("src/repro/uarch/predictors/bimode.py")
        assert finding["line"] == expected_line
        assert "MutatedBiMode._run is hot" in finding["message"]


# ----------------------------------------------------------------------
# CLI surface: --list-rules tier, --rule selection, SARIF indices.
# ----------------------------------------------------------------------


class TestCliSurface:
    def test_list_rules_shows_perf_tier(self):
        code, out, _ = run_cli("--list-rules")
        assert code == 0
        for rule_id in PERF_IDS:
            assert re.search(
                rf"^{rule_id} \[(error|warning)\] \(perf\) ", out, re.M
            ), rule_id

    def test_single_rule_selection(self, tmp_path):
        kernel = (
            "        count = 0\n"
            "        for pc in addresses.tolist():\n"
            "            count += int(pc) & 1\n"
            "        return count\n"
        )
        root = write_tree(tmp_path, {REL: structure(kernel)})
        code, out, _ = run_cli("--rule", "PERF001", "--json", str(root))
        assert code == 1
        payload = json.loads(out)
        assert payload["rule_set"] == ["PERF001"]
        assert [f["rule"] for f in payload["findings"]] == ["PERF001"]

    def test_sarif_rule_indices_are_correct(self, tmp_path):
        kernel = (
            "        count = 0\n"
            "        for pc in addresses.tolist():\n"
            "            count += int(pc) & 1\n"
            "        return count\n"
        )
        root = write_tree(tmp_path, {REL: structure(kernel)})
        sarif_path = tmp_path / "report.sarif"
        code, _, _ = run_cli("--sarif", str(sarif_path), str(root))
        assert code == 1
        sarif = json.loads(sarif_path.read_text())
        run = sarif["runs"][0]
        ids = [rule["id"] for rule in run["tool"]["driver"]["rules"]]
        for rule_id in PERF_IDS:
            assert rule_id in ids
        perf_results = [
            r for r in run["results"] if r["ruleId"].startswith("PERF")
        ]
        assert perf_results
        for result in perf_results:
            assert ids[result["ruleIndex"]] == result["ruleId"]
