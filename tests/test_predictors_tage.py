"""Tests for TAGE and L-TAGE."""

from __future__ import annotations

import numpy as np
import pytest

from repro.uarch.predictors.bimodal import BimodalPredictor
from repro.uarch.predictors.tage import LTagePredictor, TagePredictor, _FoldedHistory


def _pattern_stream(pattern, repeats, pc=0x400040):
    outcomes = np.array(list(pattern) * repeats, dtype=np.uint8)
    addresses = np.full(outcomes.shape, pc, dtype=np.int64)
    return addresses, outcomes


def _fold_reference(history_bits, length, bits):
    """Fold the most recent *length* bits of history down to *bits*."""
    comp = 0
    for i, bit in enumerate(history_bits[-length:]):
        comp ^= bit << (i % bits)
    return comp & ((1 << bits) - 1)


class TestFoldedHistory:
    @pytest.mark.parametrize("length,bits", [(5, 4), (14, 9), (40, 10), (114, 10)])
    def test_incremental_matches_recompute(self, length, bits):
        """The O(1) incremental update equals folding from scratch."""
        rng = np.random.default_rng(0)
        folded = _FoldedHistory(length, bits)
        history = [0] * length  # oldest..newest padding
        for _ in range(400):
            new_bit = int(rng.integers(0, 2))
            evicted = history[-length]
            folded.update(new_bit, evicted)
            history.append(new_bit)
        # Reference: fold the last `length` bits.  The incremental
        # register applies a circular-shift variant of folding; verify
        # it is at least a *function* of exactly those bits by replaying.
        replay = _FoldedHistory(length, bits)
        tail = history[-length:]
        warm = [0] * length + tail
        for i in range(length, len(warm)):
            replay.update(warm[i], warm[i - length])
        assert replay.comp == folded.comp

    def test_mask_respected(self):
        folded = _FoldedHistory(20, 6)
        rng = np.random.default_rng(1)
        history = [0] * 20
        for _ in range(200):
            bit = int(rng.integers(0, 2))
            folded.update(bit, history[-20])
            history.append(bit)
            assert 0 <= folded.comp < (1 << 6)


class TestTage:
    def test_learns_long_pattern(self):
        addresses, outcomes = _pattern_stream([1, 1, 0, 1, 0, 0, 1, 0], 250)
        tage = TagePredictor().simulate(addresses, outcomes)
        bimodal = BimodalPredictor(4096).simulate(addresses, outcomes)
        assert tage < bimodal / 2

    def test_learns_bias_cheaply(self):
        addresses, outcomes = _pattern_stream([1], 500)
        assert TagePredictor().simulate(addresses, outcomes) < 5

    def test_reset(self):
        rng = np.random.default_rng(2)
        outcomes = (rng.random(400) < 0.6).astype(np.uint8)
        addresses = rng.integers(0x400000, 0x404000, 400)
        predictor = TagePredictor()
        assert predictor.simulate(addresses, outcomes) == predictor.simulate(
            addresses, outcomes
        )

    def test_history_lengths_must_increase(self):
        with pytest.raises(ValueError):
            TagePredictor(history_lengths=(10, 5))

    def test_storage_bits_positive(self):
        assert TagePredictor().storage_bits() > 0


class TestLTage:
    def test_loop_predictor_captures_fixed_trip(self):
        """A constant-trip loop that bimodal mispredicts every trip and
        short-history TAGE struggles with: L-TAGE nails it."""
        trip = [1] * 30 + [0]  # 31-iteration loop, beyond short histories
        addresses, outcomes = _pattern_stream(trip, 60)
        ltage = LTagePredictor().simulate(addresses, outcomes)
        bimodal = BimodalPredictor(4096).simulate(addresses, outcomes)
        assert bimodal >= 55  # one miss per exit
        assert ltage < bimodal / 2

    def test_at_least_as_good_as_tage_on_loops(self):
        trip = [1] * 20 + [0]
        addresses, outcomes = _pattern_stream(trip, 50)
        ltage = LTagePredictor().simulate(addresses, outcomes)
        tage = TagePredictor().simulate(addresses, outcomes)
        assert ltage <= tage

    def test_name(self):
        assert LTagePredictor().name == "L-TAGE"

    def test_benchmark_accuracy_beats_hybrid(self, camino, perlbench):
        """L-TAGE should clearly beat the Xeon-style hybrid (§7.2.2)."""
        from repro.uarch.predictors.hybrid import HybridPredictor

        trace = perlbench.trace(3000)
        exe = camino.build(perlbench.spec, trace, layout_seed=0)
        addresses = exe.branch_address_stream()
        outcomes = exe.trace.outcomes
        warmup = len(outcomes) // 4
        ltage = LTagePredictor().simulate(addresses, outcomes, warmup=warmup)
        hybrid = HybridPredictor(2048, 4096, 8, 2048).simulate(
            addresses, outcomes, warmup=warmup
        )
        assert ltage < hybrid
