"""Tests for the normality diagnostic and the latency adjustment."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.latency import (
    AdjustedOutcome,
    latency_adjusted_ranking,
    storage_latency_model,
)
from repro.errors import ConfigurationError, ModelError
from repro.stats.normality import jarque_bera
from repro.uarch.predictors.bimodal import BimodalPredictor
from repro.uarch.predictors.tage import LTagePredictor

from tests.test_model import _synthetic_observations


class TestJarqueBera:
    def test_normal_sample_passes(self):
        rng = np.random.default_rng(10)
        result = jarque_bera(rng.normal(0, 1, 500))
        assert result.looks_normal()
        assert abs(result.skewness) < 0.3
        assert abs(result.excess_kurtosis) < 0.5

    def test_heavy_tailed_sample_fails(self):
        rng = np.random.default_rng(1)
        result = jarque_bera(rng.standard_cauchy(500))
        assert not result.looks_normal()

    def test_skewed_sample_fails(self):
        rng = np.random.default_rng(2)
        result = jarque_bera(rng.exponential(1.0, 500))
        assert not result.looks_normal()
        assert result.skewness > 1.0

    def test_matches_scipy(self):
        from scipy import stats as scipy_stats

        rng = np.random.default_rng(3)
        sample = rng.normal(0, 1, 300)
        ours = jarque_bera(sample)
        theirs = scipy_stats.jarque_bera(sample)
        assert ours.statistic == pytest.approx(theirs.statistic, rel=1e-9)
        assert ours.p_value == pytest.approx(theirs.pvalue, rel=1e-9)

    def test_validation(self):
        with pytest.raises(ModelError):
            jarque_bera([1.0, 2.0])
        with pytest.raises(ModelError):
            jarque_bera([1.0] * 20)

    def test_model_residual_normality(self):
        from repro.core.model import PerformanceModel

        model = PerformanceModel.from_observations(_synthetic_observations(n=80))
        result = model.residual_normality()
        # Residuals were generated as Gaussian noise.
        assert result.looks_normal()


class TestLatencyModel:
    def test_free_budget_costs_nothing(self):
        model = storage_latency_model(free_bits=1 << 20)
        assert model(BimodalPredictor(1024)) == 0.0

    def test_cost_grows_with_storage(self):
        model = storage_latency_model(free_bits=2048, cpi_per_doubling=0.01)
        small = model(BimodalPredictor(1024))   # 2048 bits: free
        big = model(BimodalPredictor(65536))    # 131072 bits: 6 doublings
        assert small == 0.0
        assert big == pytest.approx(0.06)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            storage_latency_model(free_bits=0)
        with pytest.raises(ConfigurationError):
            storage_latency_model(cpi_per_doubling=-1)

    def test_ranking_can_flip(self, lab):
        """The §7.2.3 scenario: a harsh latency model erodes L-TAGE's
        advantage over a small predictor."""
        from repro.core.evaluate import PredictorEvaluator

        benchmark = lab.benchmark("445.gobmk")
        observations = lab.observations("445.gobmk")
        candidates = [
            BimodalPredictor(1024, name="small-bimodal"),
            LTagePredictor(),
        ]
        evaluator = PredictorEvaluator(lab.interferometer, [candidates[0]])
        evaluation = lab.evaluation("445.gobmk")  # has L-TAGE already
        # Build a merged candidate list present in the evaluation.
        predictors = [p for p in candidates if p.name in evaluation.by_predictor] or [
            LTagePredictor()
        ]
        fair = latency_adjusted_ranking(
            evaluation, predictors, storage_latency_model(free_bits=1 << 22)
        )
        harsh = latency_adjusted_ranking(
            evaluation, predictors,
            storage_latency_model(free_bits=256, cpi_per_doubling=0.05),
        )
        ltage_fair = next(o for o in fair if o.predictor == "L-TAGE")
        ltage_harsh = next(o for o in harsh if o.predictor == "L-TAGE")
        assert ltage_fair.latency_cpi == 0.0
        assert ltage_harsh.latency_cpi > 0.3
        assert ltage_harsh.adjusted_cpi > ltage_fair.adjusted_cpi

    def test_adjusted_outcome(self):
        outcome = AdjustedOutcome(predictor="x", predicted_cpi=1.0, latency_cpi=0.2)
        assert outcome.adjusted_cpi == pytest.approx(1.2)
