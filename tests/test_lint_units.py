"""The quantity-algebra lint pack: UNIT001-003, STAT001, and friends.

Covers the unit lattice (hypothesis property tests: the algebra is
associative and commutative, and UNKNOWN never promotes into a
flagging state), the inference seeds of :mod:`repro.lint.unitflow`,
a true-positive/true-negative fixture corpus per rule, the mutation
check the issue demands (deleting the kilo conversion from a copy of
``observations.py`` must produce a UNIT002 finding at the exact line),
and the CLI satellites (unknown ``--rule`` ids exit 2 with the valid
ids listed; ``--sarif`` emits well-formed SARIF 2.1.0).
"""

from __future__ import annotations

import ast
import contextlib
import io
import json
from pathlib import Path

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import LintUsageError
from repro.lint.callgraph import Program
from repro.lint.cli import main as lint_main
from repro.lint.rules import get_rules
from repro.lint.unitflow import (
    KNOWN_UNITS,
    UnitScope,
    UnitValue,
    add_units,
    div_units,
    is_known,
    join,
    mul_units,
    name_unit,
)

UNIT_RULES = "UNIT001,UNIT002,UNIT003,STAT001"

REPO_ROOT = Path(__file__).resolve().parents[1]


def run_cli(*argv):
    out, err = io.StringIO(), io.StringIO()
    with contextlib.redirect_stdout(out), contextlib.redirect_stderr(err):
        code = lint_main(list(argv))
    return code, out.getvalue(), err.getvalue()


def write_tree(tmp_path: Path, files: dict[str, str]) -> Path:
    for rel, source in files.items():
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source)
    return tmp_path


def lint_tree(tmp_path: Path, files: dict[str, str]):
    """Lint a fixture tree with only the quantity-algebra rules."""
    root = write_tree(tmp_path, files)
    return run_cli("--rules", UNIT_RULES, str(root))


def findings_by_rule(tmp_path: Path, files: dict[str, str]) -> dict[str, int]:
    root = write_tree(tmp_path, files)
    _, out, _ = run_cli("--rules", UNIT_RULES, "--json", str(root))
    return json.loads(out)["summary"]["by_rule"]


def build_program(sources: dict[str, str]) -> Program:
    parsed = []
    for rel, source in sorted(sources.items()):
        parsed.append((rel, ast.parse(source), source.splitlines()))
    return Program.build(parsed)


def scope_and_return(source: str, func: str = "f"):
    """A UnitScope over function *func* plus its first return expression."""
    program = build_program({"src/repro/core/mod.py": source})
    module = program.modules["src/repro/core/mod.py"]
    info = module.functions[func]
    scope = UnitScope(program, module, info, list(info.node.body))
    ret = next(
        node for node in ast.walk(info.node) if isinstance(node, ast.Return)
    )
    return scope, ret.value


def unit_of_return(source: str, func: str = "f") -> UnitValue:
    scope, expr = scope_and_return(source, func)
    return scope.unit_of(expr)


# ----------------------------------------------------------------------
# The lattice algebra (hypothesis property tests).
# ----------------------------------------------------------------------

units = st.sampled_from(list(UnitValue))


class TestLatticeAlgebra:
    @given(units, units)
    def test_operations_commute(self, a, b):
        assert join(a, b) is join(b, a)
        assert add_units(a, b) is add_units(b, a)
        assert mul_units(a, b) is mul_units(b, a)

    @given(units, units, units)
    def test_operations_associate(self, a, b, c):
        assert join(join(a, b), c) is join(a, join(b, c))
        assert add_units(add_units(a, b), c) is add_units(a, add_units(b, c))
        assert mul_units(mul_units(a, b), c) is mul_units(a, mul_units(b, c))

    @given(units)
    def test_join_is_idempotent(self, a):
        assert join(a, a) is a

    @given(units)
    def test_unknown_never_promotes(self, a):
        """No operation manufactures a flagging unit from UNKNOWN."""
        unknown = UnitValue.UNKNOWN
        for op in (join, add_units, mul_units, div_units):
            assert op(a, unknown) not in KNOWN_UNITS
            assert op(unknown, a) not in KNOWN_UNITS

    @given(units)
    def test_dimensionless_is_scaling_identity(self, a):
        dim = UnitValue.DIMENSIONLESS
        assert mul_units(a, dim) is a
        assert div_units(a, dim) is a

    def test_quantity_algebra_anchors(self):
        assert div_units(UnitValue.CYCLES, UnitValue.INSTRUCTIONS) is UnitValue.CPI
        assert (
            mul_units(UnitValue.CPI, UnitValue.INSTRUCTIONS) is UnitValue.CYCLES
        )
        assert div_units(UnitValue.MPKI, UnitValue.MPKI) is UnitValue.DIMENSIONLESS


# ----------------------------------------------------------------------
# Inference seeds.
# ----------------------------------------------------------------------


class TestInference:
    def test_lexicon_suffixes(self):
        assert name_unit("mean_mpki") is UnitValue.MPKI
        assert name_unit("total_cycles") is UnitValue.CYCLES
        assert name_unit("instructions") is UnitValue.INSTRUCTIONS
        assert name_unit("branch_mispredicts") is UnitValue.MISSES
        assert name_unit("cpis") is UnitValue.CPI

    def test_lexicon_rejects_compounds_and_neighbours(self):
        # A CPI-per-MPKI slope and an access count are not quantities
        # the lexicon may claim.
        assert name_unit("cpi_per_doubling") is UnitValue.UNKNOWN
        assert name_unit("l1d_accesses") is UnitValue.UNKNOWN
        assert name_unit("coupling_mpki_l1d") is UnitValue.UNKNOWN
        assert name_unit("branches") is UnitValue.UNKNOWN

    def test_params_feed_the_division_rule(self):
        assert (
            unit_of_return("def f(cycles, instructions):\n"
                           "    return cycles / instructions\n")
            is UnitValue.CPI
        )

    def test_metric_string_subscript(self):
        assert (
            unit_of_return("def f(row):\n    return row['l1d_mpki']\n")
            is UnitValue.MPKI
        )

    def test_sanctioned_constructor(self):
        assert (
            unit_of_return("from repro import units\n"
                           "def f(a, b):\n    return units.mpki(a, b)\n")
            is UnitValue.MPKI
        )

    def test_annotation_beats_lexicon(self):
        source = (
            "from repro import units\n"
            "def f(value: units.Cpi):\n    return value\n"
        )
        assert unit_of_return(source) is UnitValue.CPI

    def test_builtin_passthrough(self):
        assert (
            unit_of_return("def f(row):\n    return float(row['cpi'])\n")
            is UnitValue.CPI
        )

    def test_assignment_chain(self):
        source = (
            "def f(row):\n"
            "    value = row['btb_mpki']\n"
            "    scaled = value * 2.0\n"
            "    return scaled\n"
        )
        assert unit_of_return(source) is UnitValue.MPKI


# ----------------------------------------------------------------------
# UNIT001 — mixed-unit arithmetic.
# ----------------------------------------------------------------------


class TestUnit001:
    def test_flags_mixed_addition(self, tmp_path):
        code, out, _ = lint_tree(tmp_path, {
            "src/repro/core/mix.py":
                "def f(cycles, instructions):\n"
                "    return cycles + instructions\n",
        })
        assert code == 1
        assert "UNIT001" in out

    def test_flags_mixed_comparison(self, tmp_path):
        code, out, _ = lint_tree(tmp_path, {
            "src/repro/core/cmp.py":
                "def f(mean_mpki, mean_cpi):\n"
                "    return mean_mpki > mean_cpi\n",
        })
        assert code == 1
        assert "UNIT001" in out

    def test_same_unit_and_offsets_are_clean(self, tmp_path):
        code, _, _ = lint_tree(tmp_path, {
            "src/repro/core/ok.py":
                "def f(mean_cpi, perfect_cpi):\n"
                "    improvement = (mean_cpi - perfect_cpi) / mean_cpi\n"
                "    return improvement * 100.0\n",
        })
        assert code == 0

    def test_unknown_operand_never_flags(self, tmp_path):
        code, _, _ = lint_tree(tmp_path, {
            "src/repro/core/unk.py":
                "def f(mean_cpi, fudge):\n    return mean_cpi + fudge\n",
        })
        assert code == 0


# ----------------------------------------------------------------------
# UNIT002 — malformed ratios and bare 1000s.
# ----------------------------------------------------------------------


class TestUnit002:
    def test_flags_raw_miss_ratio(self, tmp_path):
        code, out, _ = lint_tree(tmp_path, {
            "src/repro/core/raw.py":
                "def f(misses, instructions):\n"
                "    return misses / instructions\n",
        })
        assert code == 1
        assert "UNIT002" in out

    def test_flags_bare_kilo_on_quantity(self, tmp_path):
        code, out, _ = lint_tree(tmp_path, {
            "src/repro/core/kilo.py":
                "def f(mean_mpki):\n    return mean_mpki * 1000\n",
        })
        assert code == 1
        assert "UNIT002" in out

    def test_flags_kilo_scaled_instruction_ratio(self, tmp_path):
        # events is no known unit, but /instructions * 1000 is the MPKI
        # formula spelled by hand.
        code, out, _ = lint_tree(tmp_path, {
            "src/repro/core/formula.py":
                "def f(events, instructions):\n"
                "    return events / instructions * 1000.0\n",
        })
        assert code == 1
        assert "UNIT002" in out

    def test_full_formula_is_one_finding_not_two(self, tmp_path):
        by_rule = findings_by_rule(tmp_path, {
            "src/repro/core/dup.py":
                "def f(misses, instructions):\n"
                "    return misses / instructions * 1000.0\n",
        })
        assert by_rule == {"UNIT002": 1}

    def test_named_per_kilo_constant_is_sanctioned(self, tmp_path):
        code, _, _ = lint_tree(tmp_path, {
            "src/repro/core/named.py":
                "from repro import units\n"
                "def f(mean_mpki):\n"
                "    return mean_mpki * units.PER_KILO\n",
        })
        assert code == 0

    def test_units_module_itself_is_exempt(self, tmp_path):
        code, _, _ = lint_tree(tmp_path, {
            "src/repro/units.py":
                "def mpki(misses, instructions):\n"
                "    return misses / instructions * 1000.0\n",
        })
        assert code == 0


# ----------------------------------------------------------------------
# UNIT003 — call and return boundaries.
# ----------------------------------------------------------------------


class TestUnit003:
    def test_flags_wrong_unit_argument_by_lexicon(self, tmp_path):
        code, out, _ = lint_tree(tmp_path, {
            "src/repro/core/callee.py":
                "def evaluate(mean_mpki):\n    return mean_mpki\n"
                "def use(mean_cpi):\n    return evaluate(mean_cpi)\n",
        })
        assert code == 1
        assert "UNIT003" in out

    def test_flags_wrong_unit_argument_by_annotation(self, tmp_path):
        code, out, _ = lint_tree(tmp_path, {
            "src/repro/core/annot.py":
                "from repro import units\n"
                "def evaluate(rate: units.Mpki):\n    return rate\n"
                "def use(mean_cpi):\n    return evaluate(mean_cpi)\n",
        })
        assert code == 1
        assert "UNIT003" in out

    def test_flags_dataclass_field_mismatch(self, tmp_path):
        code, out, _ = lint_tree(tmp_path, {
            "src/repro/core/row.py":
                "from dataclasses import dataclass\n"
                "@dataclass\n"
                "class Row:\n"
                "    mean_mpki: float\n"
                "def build(mean_cpi):\n"
                "    return Row(mean_mpki=mean_cpi)\n",
        })
        assert code == 1
        assert "UNIT003" in out

    def test_flags_return_bound_to_wrong_name(self, tmp_path):
        code, out, _ = lint_tree(tmp_path, {
            "src/repro/core/bind.py":
                "from repro import units\n"
                "def make() -> units.Mpki:\n"
                "    return units.Mpki(0.0)\n"
                "def use():\n"
                "    mean_cpi = make()\n"
                "    return mean_cpi\n",
        })
        assert code == 1
        assert "UNIT003" in out

    def test_matching_units_are_clean(self, tmp_path):
        code, _, _ = lint_tree(tmp_path, {
            "src/repro/core/okcall.py":
                "def evaluate(mean_mpki):\n    return mean_mpki\n"
                "def use(btb_mpki):\n    return evaluate(btb_mpki)\n",
        })
        assert code == 0


# ----------------------------------------------------------------------
# STAT001 — statistical-contract violations.
# ----------------------------------------------------------------------


class TestStat001:
    def test_flags_response_metric_on_x_axis(self, tmp_path):
        code, out, _ = lint_tree(tmp_path, {
            "src/repro/core/fit.py":
                "def fit(observations, model_cls):\n"
                "    return model_cls.from_observations(\n"
                "        observations, x_metric='cpi')\n",
        })
        assert code == 1
        assert "STAT001" in out and "swapped" in out

    def test_flags_rate_metric_on_y_axis(self, tmp_path):
        code, out, _ = lint_tree(tmp_path, {
            "src/repro/core/fity.py":
                "def fit(observations, model_cls):\n"
                "    return model_cls.from_observations(\n"
                "        observations, x_metric='mpki', y_metric='l2_mpki')\n",
        })
        assert code == 1
        assert "STAT001" in out

    def test_flags_swapped_fit_simple_arguments(self, tmp_path):
        by_rule = findings_by_rule(tmp_path, {
            "src/repro/stats/swap.py":
                "from repro.stats.regression import fit_simple\n"
                "def fit(cpis, mpkis):\n"
                "    return fit_simple(cpis, mpkis)\n",
        })
        assert by_rule.get("STAT001") == 2  # both axes are swapped

    def test_flags_cpi_fed_to_model_predict(self, tmp_path):
        code, out, _ = lint_tree(tmp_path, {
            "src/repro/core/pred.py":
                "class PerformanceModel:\n"
                "    def predict(self, x0):\n"
                "        return x0\n"
                "def use(model, mean_cpi):\n"
                "    return model.predict(mean_cpi)\n",
        })
        assert code == 1
        assert "STAT001" in out

    def test_flags_unscreened_slope_report_in_harness(self, tmp_path):
        code, out, _ = lint_tree(tmp_path, {
            "src/repro/harness/rep.py":
                "def report(observations, model_cls):\n"
                "    model = model_cls.from_observations(\n"
                "        observations, x_metric='mpki')\n"
                "    return model.slope\n",
        })
        assert code == 1
        assert "STAT001" in out and "significance" in out

    def test_screened_slope_report_is_clean(self, tmp_path):
        code, _, _ = lint_tree(tmp_path, {
            "src/repro/harness/okrep.py":
                "def report(observations, model_cls):\n"
                "    model = model_cls.from_observations(\n"
                "        observations, x_metric='mpki')\n"
                "    if not model.is_significant():\n"
                "        return None\n"
                "    return model.slope\n",
        })
        assert code == 0

    def test_slope_read_without_fit_is_clean(self, tmp_path):
        code, _, _ = lint_tree(tmp_path, {
            "src/repro/harness/render.py":
                "def render(model):\n"
                "    return f'{model.slope:.3f} {model.intercept:.3f}'\n",
        })
        assert code == 0

    def test_unscreened_slope_outside_harness_is_clean(self, tmp_path):
        # Sub-check C polices the reporting layers only.
        code, _, _ = lint_tree(tmp_path, {
            "src/repro/core/internal.py":
                "def refit(observations, model_cls):\n"
                "    model = model_cls.from_observations(\n"
                "        observations, x_metric='mpki')\n"
                "    return model.slope\n",
        })
        assert code == 0


# ----------------------------------------------------------------------
# The mutation check: delete the kilo conversion, demand a finding.
# ----------------------------------------------------------------------


class TestMutationCheck:
    def test_deleted_kilo_conversion_is_flagged_at_exact_line(self, tmp_path):
        source = (REPO_ROOT / "src/repro/core/observations.py").read_text()
        sanctioned = "units.mpki(misses, instructions)"
        assert sanctioned in source, "mutation anchor moved"
        mutated = source.replace(sanctioned, "misses / instructions")
        expected_line = next(
            lineno
            for lineno, text in enumerate(mutated.splitlines(), 1)
            if "return misses / instructions" in text
        )
        root = write_tree(
            tmp_path, {"src/repro/core/observations.py": mutated}
        )
        code, out, _ = run_cli("--rules", UNIT_RULES, "--json", str(root))
        assert code == 1
        payload = json.loads(out)
        hits = [
            f for f in payload["findings"]
            if f["rule"] == "UNIT002"
            and f["path"].endswith("src/repro/core/observations.py")
        ]
        assert len(hits) == 1
        assert hits[0]["line"] == expected_line

    def test_unmutated_observations_module_is_clean(self, tmp_path):
        source = (REPO_ROOT / "src/repro/core/observations.py").read_text()
        code, _, _ = lint_tree(
            tmp_path, {"src/repro/core/observations.py": source}
        )
        assert code == 0


# ----------------------------------------------------------------------
# CLI satellites: unknown rules exit 2; SARIF output.
# ----------------------------------------------------------------------


class TestCliSatellites:
    def test_unknown_rule_exits_2_and_lists_valid_ids(self, tmp_path):
        code, _, err = run_cli("--rule", "UNIT999", str(tmp_path))
        assert code == 2
        assert "unknown rule 'UNIT999'" in err
        assert "valid rule ids" in err
        # Both per-file and program rule ids are offered.
        assert "DET001" in err and "UNIT001" in err and "STAT001" in err

    def test_get_rules_raises_usage_error(self):
        with pytest.raises(LintUsageError):
            get_rules(["BOGUS1"])

    def test_sarif_report_structure(self, tmp_path):
        root = write_tree(tmp_path, {
            "src/repro/core/raw.py":
                "def f(misses, instructions):\n"
                "    return misses / instructions\n",
        })
        sarif_path = tmp_path / "out.sarif"
        code, _, _ = run_cli(
            "--rules", UNIT_RULES, "--sarif", str(sarif_path), str(root)
        )
        assert code == 1
        payload = json.loads(sarif_path.read_text())
        assert payload["version"] == "2.1.0"
        run = payload["runs"][0]
        driver = run["tool"]["driver"]
        assert driver["name"] == "repro-lint"
        rule_ids = [rule["id"] for rule in driver["rules"]]
        assert rule_ids == sorted(UNIT_RULES.split(","))
        result = run["results"][0]
        assert result["ruleId"] == "UNIT002"
        assert result["level"] == "error"
        assert rule_ids[result["ruleIndex"]] == "UNIT002"
        region = result["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] == 2
        assert result["partialFingerprints"]["reproLintFingerprint/v1"]

    def test_sarif_parse_error_has_no_rule_index(self, tmp_path):
        root = write_tree(tmp_path, {"src/repro/core/bad.py": "def f(:\n"})
        sarif_path = tmp_path / "bad.sarif"
        code, _, _ = run_cli(
            "--rules", "UNIT001", "--sarif", str(sarif_path), str(root)
        )
        assert code == 1
        payload = json.loads(sarif_path.read_text())
        result = payload["runs"][0]["results"][0]
        assert result["ruleId"] == "DET000"
        assert "ruleIndex" not in result
