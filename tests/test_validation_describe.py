"""Tests for the self-test battery and the suite describer."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.validation import CHECKS, render_selftest, run_selftest
from repro.workloads.describe import describe_benchmark, describe_suite
from repro.workloads.describe import main as describe_main


class TestSelftest:
    @pytest.fixture(scope="class")
    def results(self):
        return run_selftest()

    def test_all_checks_pass(self, results):
        failed = [r for r in results if not r.passed]
        assert not failed, f"failing checks: {[(r.name, r.detail) for r in failed]}"

    def test_covers_all_registered_checks(self, results):
        assert {r.name for r in results} == set(CHECKS)

    def test_render(self, results):
        text = render_selftest(results)
        assert "6/6 checks passed" in text
        assert "FAIL" not in text

    def test_render_failure_marked(self):
        from repro.validation import CheckResult

        text = render_selftest(
            [CheckResult(name="x", passed=False, detail="boom")]
        )
        assert "FAIL" in text
        assert "INSTALLATION BROKEN" in text

    def test_cli_flag(self, capsys):
        assert main(["--selftest"]) == 0
        assert "checks passed" in capsys.readouterr().out


class TestDescribe:
    def test_suite_table(self):
        text = describe_suite()
        assert "400.perlbench" in text
        assert "483.xalancbmk" in text
        assert text.count("\n") >= 24  # header + 23 rows

    def test_single_benchmark(self):
        text = describe_benchmark("429.mcf")
        assert "429.mcf" in text
        assert "behaviour mix" in text
        assert "working sets" in text

    def test_mase_only_benchmark(self):
        assert "252.eon" in describe_benchmark("252.eon")

    def test_main_entry(self, capsys):
        assert describe_main([]) == 0
        assert "Synthetic SPEC" in capsys.readouterr().out
        assert describe_main(["470.lbm"]) == 0
        assert "lattice Boltzmann" in capsys.readouterr().out
