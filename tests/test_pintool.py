"""Tests for the Pin-style functional simulator."""

from __future__ import annotations

import pytest

from repro import units
from repro.errors import ConfigurationError
from repro.pintool.brsim import PinTool
from repro.uarch.predictors.bimodal import BimodalPredictor
from repro.uarch.predictors.perfect import PerfectPredictor
from repro.uarch.predictors.static import AlwaysTakenPredictor


@pytest.fixture(scope="module")
def exe(camino, tiny_spec, tiny_trace):
    return camino.build(tiny_spec, tiny_trace, layout_seed=3)


class TestPinTool:
    def test_counts_all_predictors(self, exe):
        tool = PinTool([BimodalPredictor(64), PerfectPredictor()])
        results = tool.run(exe)
        assert set(results) == {"bimodal-64", "perfect"}

    def test_perfect_zero(self, exe):
        results = PinTool([PerfectPredictor()]).run(exe)
        assert results["perfect"].mispredicts == 0
        assert results["perfect"].mpki == 0.0
        assert results["perfect"].accuracy == 1.0

    def test_no_variance_across_repeats(self, exe):
        tool = PinTool([BimodalPredictor(64)])
        a = tool.run(exe)["bimodal-64"]
        b = tool.run(exe)["bimodal-64"]
        assert a == b

    def test_branch_count_matches_window(self, exe):
        tool = PinTool([PerfectPredictor()], warmup_fraction=0.25)
        result = tool.run(exe)["perfect"]
        warmup = int(exe.trace.n_events * 0.25)
        assert result.branches == exe.trace.n_events - warmup

    def test_zero_warmup(self, exe):
        tool = PinTool([AlwaysTakenPredictor()], warmup_fraction=0.0)
        result = tool.run(exe)["always-taken"]
        assert result.branches == exe.trace.n_events
        assert result.instructions == exe.trace.total_instructions

    def test_mpki_formula(self, exe):
        result = PinTool([BimodalPredictor(64)]).run(exe)["bimodal-64"]
        assert result.mpki == pytest.approx(
            units.mpki(result.mispredicts, result.instructions)
        )

    def test_empty_predictors_rejected(self):
        with pytest.raises(ConfigurationError):
            PinTool([])

    def test_duplicate_names_rejected(self):
        with pytest.raises(ConfigurationError):
            PinTool([BimodalPredictor(64), BimodalPredictor(64)])

    def test_bad_warmup_rejected(self):
        with pytest.raises(ConfigurationError):
            PinTool([PerfectPredictor()], warmup_fraction=1.0)
