"""Suite-level calibration guards.

These tests pin the *shape* of the synthetic suite that every
experiment depends on (docs/METHODOLOGY.md §4): which benchmarks are
branchy, which are memory-bound, which are layout-insensitive.  They
run on the shared test-scale laboratory, so they double as an early
warning when a personality edit breaks a paper shape.
"""

from __future__ import annotations

import numpy as np
import pytest


class TestMpkiOrdering:
    def test_game_tree_search_is_branchiest(self, lab):
        """gobmk's MPKI tops the integer benchmarks (as on real hardware)."""
        gobmk = lab.observations("445.gobmk").mpkis.mean()
        for name in ("456.hmmer", "401.bzip2", "444.namd"):
            assert gobmk > lab.observations(name).mpkis.mean()

    def test_fp_codes_are_branch_quiet(self, lab):
        for quiet in ("410.bwaves", "433.milc", "470.lbm"):
            quiet_mpki = lab.observations(quiet).mpkis.mean()
            assert quiet_mpki < 4.0
            assert quiet_mpki < lab.observations("400.perlbench").mpkis.mean() / 3

    def test_suite_mean_mpki_in_paper_band(self, lab):
        """Paper's real predictor averages 6.3 MPKI; ours must stay the
        same order of magnitude (we accept roughly 4-16)."""
        means = [lab.observations(name).mpkis.mean() for name in lab.suite]
        suite_mean = float(np.mean(means))
        assert 4.0 < suite_mean < 16.0


class TestCpiOrdering:
    def test_mcf_is_most_memory_bound(self, lab):
        mcf = lab.observations("429.mcf").cpis.mean()
        for name in lab.suite:
            if name != "429.mcf":
                assert mcf > lab.observations(name).cpis.mean()

    def test_hmmer_is_cheapest(self, lab):
        """hmmer has the paper's lowest intercept (0.203); it should be
        among our cheapest benchmarks too."""
        hmmer = lab.observations("456.hmmer").cpis.mean()
        cheaper = sum(
            1
            for name in lab.suite
            if lab.observations(name).cpis.mean() < hmmer
        )
        assert cheaper <= 2

    def test_suite_mean_cpi_in_paper_band(self, lab):
        # Paper: 1.387.  The test lab's short (6k-event) traces run the
        # caches and predictors colder than the experiment scales, so
        # the accepted band is wide; at small/paper scale the suite
        # averages ~1.6 (see EXPERIMENTS.md).
        means = [lab.observations(name).cpis.mean() for name in lab.suite]
        assert 1.0 < float(np.mean(means)) < 3.5


class TestSensitivityShape:
    def test_sensitive_benchmarks_have_wider_violins(self, lab):
        def rel_spread(name):
            cpis = lab.observations(name).cpis
            return float(cpis.std() / cpis.mean())

        sensitive = np.mean([rel_spread(n) for n in ("445.gobmk", "400.perlbench")])
        insensitive = np.mean([rel_spread(n) for n in ("470.lbm", "410.bwaves")])
        assert sensitive > 3 * insensitive

    def test_slopes_cluster_near_penalty(self, lab):
        """Fitted slopes for well-conditioned benchmarks sit near
        (penalty x exposure)/1000 — paper's 0.016-0.041 band."""
        in_band = 0
        names = lab.significant_benchmarks()
        for name in names:
            slope = lab.model(name).slope
            if 0.005 < slope < 0.06:
                in_band += 1
        assert in_band >= len(names) - 2

    def test_branch_density_separates_int_and_fp(self, lab):
        int_density = lab.benchmark("403.gcc").trace(
            lab.scale.trace_events
        ).branch_density_per_kilo_instruction
        fp_density = lab.benchmark("410.bwaves").trace(
            lab.scale.trace_events
        ).branch_density_per_kilo_instruction
        assert int_density > 1.5 * fp_density


class TestInstructionInvariant:
    @pytest.mark.parametrize("name", ["403.gcc", "470.lbm", "454.calculix"])
    def test_identical_instructions_across_campaign(self, lab, name):
        instructions = lab.observations(name).series("instructions")
        assert len(set(instructions.tolist())) == 1
