"""Tests for the experiment harness and CLI."""

from __future__ import annotations

import pytest

from repro.cli import EXPERIMENTS, main
from repro.errors import ConfigurationError
from repro.harness import SCALES, Laboratory
from repro.harness import (
    fig1,
    fig2,
    fig3,
    fig5,
    fig6,
    fig7,
    fig8,
    headline,
    significance,
    table1,
)
from repro.harness.lab import scale_from_env
from repro.harness.report import format_table
from repro.mase.linearity import LinearityStudy


class TestReport:
    def test_format_table_alignment(self):
        text = format_table(["name", "value"], [("a", 1.23456), ("bb", 2)])
        lines = text.splitlines()
        assert "name" in lines[0]
        assert "1.235" in text
        assert len(lines) == 4

    def test_title(self):
        text = format_table(["x"], [(1,)], title="T")
        assert text.splitlines()[0] == "T"

    def test_bool_rendering(self):
        assert "yes" in format_table(["x"], [(True,)])


class TestScales:
    def test_known_scales(self):
        assert set(SCALES) == {"ci", "small", "paper"}
        assert SCALES["paper"].n_layouts == 100

    def test_scale_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "ci")
        assert scale_from_env().name == "ci"

    def test_unknown_scale_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "huge")
        with pytest.raises(ConfigurationError):
            scale_from_env()

    def test_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert scale_from_env().name == "small"


class TestLaboratory:
    def test_observations_cached(self, lab):
        a = lab.observations("456.hmmer")
        b = lab.observations("456.hmmer")
        assert a is b
        assert len(a) == lab.scale.n_layouts

    def test_model(self, lab):
        model = lab.model("456.hmmer")
        assert model.benchmark == "456.hmmer"

    def test_significant_benchmarks_excludes_insensitive(self, lab):
        significant = lab.significant_benchmarks()
        assert "470.lbm" not in significant
        assert "456.hmmer" in significant

    def test_mase_only_benchmark_lookup(self, lab):
        assert lab.benchmark("252.eon").name == "252.eon"


class TestFigures:
    def test_fig1(self, lab):
        result = fig1.run(lab)
        assert len(result.rows) == 23
        text = result.render()
        assert "Figure 1" in text
        assert "400.perlbench" in text

    def test_fig1_violin_data(self, lab):
        result = fig1.run(lab)
        row = next(r for r in result.rows if r.benchmark == "445.gobmk")
        assert row.profile.density.size > 0
        assert row.min_pct <= 0 <= row.max_pct

    def test_fig2(self, lab):
        result = fig2.run(lab)
        assert [p.benchmark for p in result.panels] == [
            "400.perlbench",
            "471.omnetpp",
        ]
        text = result.render()
        assert "CPI =" in text
        assert "pi_low" in text

    def test_fig2_bands_ordered(self, lab):
        panel = fig2.run(lab).panels[0]
        assert (panel.pi_low <= panel.ci_low).all()
        assert (panel.ci_high <= panel.pi_high).all()

    def test_fig3(self, lab):
        result = fig3.run(lab)
        assert result.benchmark == "454.calculix"
        assert "L1 data cache" in result.render()

    def test_fig5_from_study(self, lab):
        study = LinearityStudy(trace_events=2000, n_configs=12).run(
            [lab.benchmark(n) for n in (
                "473.astar", "401.bzip2", "458.sjeng",
                "456.hmmer", "252.eon", "178.galgel",
            )]
        )
        result = fig5.run(lab, study=study)
        assert len(result.linear) == 3
        assert len(result.nonlinear) == 3
        assert "Figure 5" in result.render()

    def test_fig6(self, lab):
        result = fig6.run(lab)
        assert len(result.reports) == 23
        assert 0.0 <= result.mean_branch_r2 <= 1.0
        assert "combined" in result.render()

    def test_fig7(self, lab):
        result = fig7.run(lab)
        assert len(result.evaluations) == len(lab.significant_benchmarks())
        gas = [result.average_mpki(f"GAs-{size}KB") for size in (2, 4, 8, 16)]
        assert gas == sorted(gas, reverse=True)
        assert result.average_mpki("L-TAGE") < result.average_mpki("real")
        assert "Figure 7" in result.render()

    def test_fig8(self, lab):
        result = fig8.run(lab)
        real, _ = result.real_cpi
        perfect, _ = result.perfect_cpi
        ltage, _ = result.predictor_cpi("L-TAGE")
        assert perfect < ltage < real
        assert result.perfect_improvement_percent > result.ltage_improvement_percent
        assert "Figure 8" in result.render()

    def test_fig7_fig8_share_campaign(self, lab):
        """Both figures consume the same cached evaluations."""
        a = fig7.run(lab).evaluations
        b = fig8.run(lab).evaluations
        assert a == b

    def test_table1(self, lab):
        result = table1.run(lab)
        names = [row.benchmark for row in result.rows]
        assert "470.lbm" not in names
        row = result.row_for(names[0])
        assert row.low < row.intercept < row.high
        assert "Table 1" in result.render()

    def test_significance(self, lab):
        result = significance.run(lab)
        assert len(result.rows) == 23
        # The exact 20-of-23 split is checked at full scale by the
        # benchmark harness; at the tiny test scale (n=8 layouts) one
        # borderline benchmark (429.mcf, memory-dominated CPI) may miss
        # the cut, so allow a small margin here.
        assert result.n_significant >= 18
        assert result.matches_expectation >= 20
        by_name = {row.benchmark: row for row in result.rows}
        assert not by_name["470.lbm"].significant
        assert by_name["445.gobmk"].significant
        assert "reject the null" in result.render()

    def test_headline(self, lab):
        result = headline.run(lab)
        assert result.benchmark == "400.perlbench"
        assert result.perfect_improvement_percent > 0
        assert 0 < result.reduction_for_10pct < 200
        assert "perfect prediction" in result.render()


class TestCli:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig1" in out
        assert "table1" in out

    def test_registry_complete(self):
        assert set(EXPERIMENTS) == {
            "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
            "table1", "significance", "headline", "extended",
        }

    def test_every_experiment_has_campaign_metadata(self):
        from repro.cli import EXPERIMENT_CAMPAIGNS

        assert set(EXPERIMENT_CAMPAIGNS) == set(EXPERIMENTS)

    def test_unknown_experiment(self, capsys):
        assert main(["not-a-fig"]) == 2

    def test_negative_workers(self, capsys):
        assert main(["headline", "--workers", "-1"]) == 2
        assert "workers" in capsys.readouterr().err

    def test_export_without_experiments_errors(self, capsys, tmp_path):
        """--export with no experiments used to silently hit the --list
        early return and drop the export; now it errors clearly."""
        assert main(["--export", str(tmp_path)]) == 2
        err = capsys.readouterr().err
        assert "--export" in err
        assert not sorted(tmp_path.iterdir())

    def test_export_with_experiments_writes_csv(self, capsys, tmp_path):
        out_dir = tmp_path / "out"
        assert main(["fig3", "--scale", "ci", "--export", str(out_dir)]) == 0
        assert (out_dir / "fig3_cache_points.csv").exists()
        assert "exported 1 CSV" in capsys.readouterr().out

    def test_cached_second_invocation_measures_nothing(self, capsys, tmp_path):
        cache = str(tmp_path / "cache")
        assert main(["headline", "--scale", "ci", "--cache-dir", cache]) == 0
        first = capsys.readouterr().out
        assert "1 measured" in first
        assert main(["headline", "--scale", "ci", "--cache-dir", cache]) == 0
        second = capsys.readouterr().out
        assert "0 layouts measured" in second
        assert "1 hits" in second

    def test_no_cache_flag_disables_store(self, capsys, tmp_path):
        cache = tmp_path / "cache"
        assert main(
            ["headline", "--scale", "ci", "--cache-dir", str(cache), "--no-cache"]
        ) == 0
        assert not cache.exists()


class TestSignificantBenchmarksErrors:
    def test_unexpected_errors_propagate(self, monkeypatch):
        """Only the zero-variance ModelError is screened out; real
        failures must not be silently hidden as 'not significant'."""
        from repro.errors import ModelError
        from tests.conftest import TEST_SCALE

        fresh = Laboratory(scale=TEST_SCALE, machine_seed=7)

        def boom(name):
            raise RuntimeError("measurement infrastructure broke")

        monkeypatch.setattr(fresh, "model", boom)
        with pytest.raises(RuntimeError):
            fresh.significant_benchmarks()

    def test_model_error_screens_out(self, monkeypatch):
        from repro.errors import ModelError
        from tests.conftest import TEST_SCALE

        fresh = Laboratory(scale=TEST_SCALE, machine_seed=7)

        def zero_variance(name):
            raise ModelError("regressor has zero variance")

        monkeypatch.setattr(fresh, "model", zero_variance)
        assert fresh.significant_benchmarks() == []
