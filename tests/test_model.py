"""Tests for performance models over observation sets."""

from __future__ import annotations

import numpy as np
import pytest

from repro import units
from repro.core.model import CombinedModel, PerformanceModel
from repro.core.observations import Observation, ObservationSet
from repro.machine.counters import Counter
from repro.machine.pmc import Measurement


def _synthetic_observations(
    slope=0.026, intercept=0.6, noise=0.002, n=60, seed=0, benchmark="synthetic"
):
    """Observations with a known linear CPI/MPKI law plus noise."""
    rng = np.random.default_rng(seed)
    instructions = 1_000_000
    observations = ObservationSet(benchmark=benchmark)
    for i in range(n):
        mpki = rng.uniform(4.0, 9.0)
        cpi = slope * mpki + intercept + rng.normal(0, noise)
        mispredicts = int(mpki * instructions / units.PER_KILO)
        cycles = int(cpi * instructions)
        l1i = int(rng.uniform(90, 110))
        l2 = int(rng.uniform(900, 1100))
        counters = {
            Counter.CYCLES: cycles,
            Counter.INSTRUCTIONS: instructions,
            Counter.BRANCH_MISPREDICTS: mispredicts,
            Counter.BRANCHES: instructions // 6,
            Counter.L1I_MISSES: l1i,
            Counter.L1D_MISSES: 2000,
            Counter.L2_MISSES: l2,
            Counter.BTB_MISSES: 10,
        }
        observations.append(
            Observation(
                layout_index=i,
                layout_seed=i,
                heap_seed=None,
                measurement=Measurement(
                    executable_fingerprint=f"f{i}",
                    layout_seed=i,
                    heap_seed=None,
                    counters=counters,
                ),
            )
        )
    return observations


class TestPerformanceModel:
    def test_recovers_known_law(self):
        obs = _synthetic_observations()
        model = PerformanceModel.from_observations(obs)
        assert model.slope == pytest.approx(0.026, abs=0.002)
        assert model.intercept == pytest.approx(0.6, abs=0.01)

    def test_significance_on_strong_law(self):
        model = PerformanceModel.from_observations(_synthetic_observations())
        assert model.is_significant()
        assert model.r > 0.9

    def test_insignificance_on_pure_noise(self):
        obs = _synthetic_observations(slope=0.0, noise=0.05, seed=1)
        model = PerformanceModel.from_observations(obs)
        assert model.r_squared < 0.2

    def test_perfect_prediction_interval_ordering(self):
        model = PerformanceModel.from_observations(_synthetic_observations())
        result = model.perfect_event_prediction()
        assert result.x0 == 0.0
        assert result.prediction.low < result.confidence.low
        assert result.confidence.high < result.prediction.high
        assert result.confidence.contains(result.mean)

    def test_perfect_prediction_covers_truth(self):
        model = PerformanceModel.from_observations(_synthetic_observations())
        result = model.perfect_event_prediction()
        assert result.prediction.contains(0.6)

    def test_improvement_percent(self):
        obs = _synthetic_observations(noise=0.0)
        model = PerformanceModel.from_observations(obs)
        mean_cpi = float(obs.cpis.mean())
        expected = (mean_cpi - 0.6) / mean_cpi * 100.0
        assert model.improvement_percent(0.0) == pytest.approx(expected, abs=0.2)

    def test_band_shapes(self):
        model = PerformanceModel.from_observations(_synthetic_observations())
        line, ci_lo, ci_hi, pi_lo, pi_hi = model.band([0.0, 5.0, 10.0])
        assert line.shape == (3,)
        assert (pi_lo <= ci_lo).all()
        assert (ci_hi <= pi_hi).all()

    def test_alternate_metrics(self):
        obs = _synthetic_observations()
        model = PerformanceModel.from_observations(
            obs, x_metric="l2_mpki", y_metric="cpi"
        )
        assert model.x_metric == "l2_mpki"
        assert not model.is_significant()  # l2 was uncorrelated noise


class TestCombinedModel:
    def test_fits_three_events(self):
        obs = _synthetic_observations()
        combined = CombinedModel.from_observations(obs)
        assert combined.fit.k == 3
        assert combined.is_significant()

    def test_combined_r2_at_least_single(self):
        obs = _synthetic_observations()
        single = PerformanceModel.from_observations(obs).r_squared
        combined = CombinedModel.from_observations(obs).r_squared
        assert combined >= single - 1e-12

    def test_predict_with_intervals(self):
        obs = _synthetic_observations()
        combined = CombinedModel.from_observations(obs)
        result = combined.predict([6.0, 0.1, 1.0])
        assert result.prediction.low < result.mean < result.prediction.high
        assert result.prediction.half_width > result.confidence.half_width
