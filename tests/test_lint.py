"""Determinism linter and runtime sanitizer (``repro.lint``).

Covers each DET rule against a fixture corpus of good/bad snippets,
suppression and baseline handling, the ``--json`` schema, CLI exit
codes, and the runtime traps of :class:`DeterminismSanitizer`.
"""

from __future__ import annotations

import glob as glob_module
import json
import os
import pathlib
import random
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.errors import DeterminismViolation, LintUsageError
from repro.lint import Baseline, DeterminismSanitizer, LintEngine
from repro.lint.cli import main as lint_main
from repro.lint.engine import parse_suppressions
from repro.lint.rules import all_rules, get_rules
from repro.lint.sanitizer import sanitize_requested

REPO_ROOT = Path(__file__).resolve().parent.parent


def lint_source(tmp_path: Path, source: str, rel: str = "src/repro/machine/mod.py"):
    """Lint one in-memory snippet placed at a scope-relevant path."""
    target = tmp_path / rel
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(source)
    engine = LintEngine()
    active, suppressed = engine.lint_file(target)
    return active, suppressed


def rules_of(findings):
    return [f.rule for f in findings]


# ----------------------------------------------------------------------
# Rule corpus: bad snippets must flag, good twins must not.
# ----------------------------------------------------------------------


class TestDET001Randomness:
    def test_global_random_functions_flagged(self, tmp_path):
        active, _ = lint_source(
            tmp_path,
            "import random\n"
            "def f():\n"
            "    return random.random() + random.randint(0, 3)\n",
        )
        assert rules_of(active) == ["DET001", "DET001"]
        assert active[0].line == 3

    def test_aliased_and_from_imports_resolved(self, tmp_path):
        active, _ = lint_source(
            tmp_path,
            "import random as rnd\n"
            "from random import shuffle\n"
            "def f(xs):\n"
            "    rnd.seed(1)\n"
            "    shuffle(xs)\n",
        )
        assert rules_of(active) == ["DET001", "DET001"]

    def test_numpy_global_state_flagged_seeded_generator_ok(self, tmp_path):
        active, _ = lint_source(
            tmp_path,
            "import numpy as np\n"
            "def f():\n"
            "    np.random.seed(0)\n"
            "    good = np.random.default_rng(42)\n"
            "    bad = np.random.default_rng()\n"
            "    return good, bad\n",
        )
        assert rules_of(active) == ["DET001", "DET001"]
        assert {f.line for f in active} == {3, 5}

    def test_entropy_sources_flagged(self, tmp_path):
        active, _ = lint_source(
            tmp_path,
            "import os, uuid\n"
            "def f():\n"
            "    return os.urandom(8), uuid.uuid4()\n",
            rel="src/repro/core/mod.py",
        )
        assert rules_of(active) == ["DET001", "DET001"]

    def test_sanctioned_rng_module_exempt(self, tmp_path):
        active, _ = lint_source(
            tmp_path,
            "import random\nx = random.random()\n",
            rel="src/repro/rng.py",
        )
        assert "DET001" not in rules_of(active)

    def test_repro_stream_not_flagged(self, tmp_path):
        active, _ = lint_source(
            tmp_path,
            "from repro.rng import RandomStream\n"
            "def f():\n"
            "    return RandomStream(7).fork('x').uniform()\n",
        )
        assert active == []


class TestDET002WallClock:
    def test_clock_reads_flagged(self, tmp_path):
        active, _ = lint_source(
            tmp_path,
            "import time\n"
            "from datetime import datetime\n"
            "def f():\n"
            "    return time.time(), time.monotonic(), datetime.now()\n",
        )
        assert rules_of(active) == ["DET002", "DET002", "DET002"]

    def test_sleep_not_flagged(self, tmp_path):
        active, _ = lint_source(
            tmp_path, "import time\ndef f():\n    time.sleep(0.1)\n"
        )
        assert active == []

    def test_telemetry_module_exempt(self, tmp_path):
        active, _ = lint_source(
            tmp_path,
            "import time\ndef now():\n    return time.time()\n",
            rel="src/repro/telemetry.py",
        )
        assert active == []


class TestDET003Iteration:
    def test_unsorted_scans_flagged(self, tmp_path):
        active, _ = lint_source(
            tmp_path,
            "import os, glob\n"
            "from pathlib import Path\n"
            "def f(p):\n"
            "    a = os.listdir(p)\n"
            "    b = glob.glob('*.json')\n"
            "    c = list(Path(p).iterdir())\n"
            "    return a, b, c\n",
        )
        assert rules_of(active) == ["DET003", "DET003", "DET003"]

    def test_sorted_wrapped_scans_ok(self, tmp_path):
        active, _ = lint_source(
            tmp_path,
            "import os, glob\n"
            "from pathlib import Path\n"
            "def f(p):\n"
            "    a = sorted(os.listdir(p))\n"
            "    b = sorted(glob.glob('*.json'))\n"
            "    c = sorted(Path(p).iterdir())\n"
            "    return a, b, c\n",
        )
        assert active == []

    def test_set_iteration_flagged_sorted_ok(self, tmp_path):
        active, _ = lint_source(
            tmp_path,
            "def f(xs):\n"
            "    for x in set(xs):\n"
            "        pass\n"
            "    for y in sorted(set(xs)):\n"
            "        pass\n"
            "    return [z for z in {1, 2, 3}]\n",
        )
        assert rules_of(active) == ["DET003", "DET003"]
        assert {f.line for f in active} == {2, 6}


class TestDET004MutableState:
    def test_mutable_default_flagged_in_core_scope(self, tmp_path):
        active, _ = lint_source(
            tmp_path,
            "def f(xs=[]):\n    return xs\n",
            rel="src/repro/uarch/mod.py",
        )
        assert rules_of(active) == ["DET004"]

    def test_module_level_mutable_flagged(self, tmp_path):
        active, _ = lint_source(
            tmp_path,
            "cache = {}\nTABLE = {1: 2}\n__all__ = ['f']\n",
            rel="src/repro/core/mod.py",
        )
        assert rules_of(active) == ["DET004"]
        assert "cache" in active[0].message

    def test_out_of_scope_module_not_checked(self, tmp_path):
        active, _ = lint_source(
            tmp_path,
            "def f(xs=[]):\n    return xs\n",
            rel="src/repro/harness/mod.py",
        )
        assert active == []


class TestDET005Env:
    def test_env_read_flagged_in_campaign_path(self, tmp_path):
        active, _ = lint_source(
            tmp_path,
            "import os\n"
            "def f():\n"
            "    return os.environ.get('X'), os.getenv('Y')\n",
            rel="src/repro/core/mod.py",
        )
        assert rules_of(active) == ["DET005", "DET005"]

    def test_cli_config_surface_exempt(self, tmp_path):
        active, _ = lint_source(
            tmp_path,
            "import os\n"
            "def f():\n"
            "    return os.environ.get('REPRO_SCALE')\n",
            rel="src/repro/cli.py",
        )
        assert active == []


class TestDET006JsonOrdering:
    def test_unsorted_dump_flagged_in_persistence(self, tmp_path):
        active, _ = lint_source(
            tmp_path,
            "import json\n"
            "def f(payload):\n"
            "    return json.dumps(payload)\n",
            rel="src/repro/persistence.py",
        )
        assert rules_of(active) == ["DET006"]

    def test_sorted_dump_ok(self, tmp_path):
        active, _ = lint_source(
            tmp_path,
            "import json\n"
            "def f(payload):\n"
            "    return json.dumps(payload, sort_keys=True)\n",
            rel="src/repro/store.py",
        )
        assert active == []

    def test_out_of_scope_file_exempt(self, tmp_path):
        active, _ = lint_source(
            tmp_path,
            "import json\nx = json.dumps({'a': 1})\n",
            rel="src/repro/harness/fig1.py",
        )
        assert active == []


# ----------------------------------------------------------------------
# Suppressions.
# ----------------------------------------------------------------------


class TestSuppressions:
    def test_inline_suppression_with_reason(self, tmp_path):
        active, suppressed = lint_source(
            tmp_path,
            "import random\n"
            "x = random.random()  # repro: allow-DET001 seeding example in docs\n",
        )
        assert active == []
        assert len(suppressed) == 1
        assert suppressed[0].suppress_reason == "seeding example in docs"

    def test_comment_line_above_covers_next_line(self, tmp_path):
        active, suppressed = lint_source(
            tmp_path,
            "import random\n"
            "# repro: allow-DET001 fixture corpus needs a real hazard\n"
            "x = random.random()\n",
        )
        assert active == []
        assert len(suppressed) == 1

    def test_suppression_without_reason_does_not_suppress(self, tmp_path):
        active, suppressed = lint_source(
            tmp_path,
            "import random\nx = random.random()  # repro: allow-DET001\n",
        )
        assert suppressed == []
        assert len(active) == 1
        assert "missing reason" in active[0].message

    def test_wrong_rule_id_does_not_suppress(self, tmp_path):
        active, _ = lint_source(
            tmp_path,
            "import random\n"
            "x = random.random()  # repro: allow-DET002 wrong rule\n",
        )
        assert rules_of(active) == ["DET001"]

    def test_parse_suppressions_maps_lines(self):
        lines = [
            "x = 1  # repro: allow-DET001 inline",
            "# repro: allow-DET003 block",
            "y = 2",
        ]
        by_line = parse_suppressions(lines)
        assert by_line[1][0].rule == "DET001"
        assert by_line[3][0].rule == "DET003"


# ----------------------------------------------------------------------
# Baseline handling.
# ----------------------------------------------------------------------


class TestBaseline:
    BAD = "import random\nx = random.random()\n"

    def test_baseline_grandfathers_then_catches_new(self, tmp_path):
        mod = tmp_path / "src/repro/machine/mod.py"
        mod.parent.mkdir(parents=True)
        mod.write_text(self.BAD)
        engine = LintEngine()
        result = engine.run([tmp_path / "src"])
        assert len(result.findings) == 1
        baseline_file = tmp_path / "baseline.json"
        Baseline.write(baseline_file, result.findings)

        baseline = Baseline.load(baseline_file)
        clean = engine.run([tmp_path / "src"], baseline=baseline)
        assert clean.clean
        assert len(clean.baselined) == 1

        # A second, new hazard is not grandfathered.
        mod.write_text(self.BAD + "y = random.randint(0, 9)\n")
        again = engine.run([tmp_path / "src"], baseline=baseline)
        assert len(again.findings) == 1
        assert "randint" in again.findings[0].message

    def test_fingerprint_survives_line_drift(self, tmp_path):
        mod = tmp_path / "src/repro/machine/mod.py"
        mod.parent.mkdir(parents=True)
        mod.write_text(self.BAD)
        engine = LintEngine()
        baseline = Baseline.from_findings(engine.run([tmp_path / "src"]).findings)
        # Prepend unrelated lines: the finding moves but stays baselined.
        mod.write_text("import os\n\n\n" + self.BAD)
        result = engine.run([tmp_path / "src"], baseline=baseline)
        assert result.clean

    def test_duplicate_hazards_tracked_by_count(self, tmp_path):
        mod = tmp_path / "src/repro/machine/mod.py"
        mod.parent.mkdir(parents=True)
        mod.write_text("import random\nx = random.random()\nx = random.random()\n")
        engine = LintEngine()
        findings = engine.run([tmp_path / "src"]).findings
        assert len(findings) == 2
        baseline = Baseline.from_findings(findings[:1])
        result = engine.run([tmp_path / "src"], baseline=baseline)
        assert len(result.findings) == 1  # one grandfathered, one new

    def test_missing_baseline_is_empty(self, tmp_path):
        assert Baseline.load(tmp_path / "nope.json").counts == {}

    def test_malformed_baseline_raises(self, tmp_path):
        bad = tmp_path / "b.json"
        bad.write_text("{not json")
        with pytest.raises(LintUsageError):
            Baseline.load(bad)


# ----------------------------------------------------------------------
# Engine behaviour.
# ----------------------------------------------------------------------


class TestEngine:
    def test_discovery_is_sorted_and_deduplicated(self, tmp_path):
        for name in ("b.py", "a.py", "c/d.py"):
            target = tmp_path / name
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text("x = 1\n")
        files = LintEngine.discover([tmp_path, tmp_path / "a.py"])
        names = [f.relative_to(tmp_path).as_posix() for f in files]
        assert names == ["a.py", "b.py", "c/d.py"]

    def test_missing_path_raises_usage_error(self, tmp_path):
        with pytest.raises(LintUsageError):
            LintEngine.discover([tmp_path / "missing"])

    def test_syntax_error_becomes_det000_finding(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def f(:\n")
        active, _ = LintEngine().lint_file(bad)
        assert rules_of(active) == ["DET000"]

    def test_rule_subset_selection(self, tmp_path):
        active, _ = lint_source(tmp_path, "import random\nx = random.random()\n")
        assert rules_of(active) == ["DET001"]
        engine = LintEngine(rules=get_rules(["DET002"]))
        mod = tmp_path / "src/repro/machine/mod.py"
        only_clock, _ = engine.lint_file(mod)
        assert only_clock == []

    def test_unknown_rule_id_rejected(self):
        with pytest.raises(LintUsageError, match="valid rule ids"):
            get_rules(["DET999"])

    def test_shipped_tree_is_clean_with_no_baseline(self):
        """The acceptance invariant: src/ lints clean with no baseline."""
        engine = LintEngine()
        result = engine.run([REPO_ROOT / "src"])
        assert result.clean, [f.location() for f in result.findings]

    def test_shipped_examples_are_clean_with_no_baseline(self):
        """examples/ is in lint scope and carries no grandfathered debt."""
        engine = LintEngine()
        result = engine.run([REPO_ROOT / "examples"])
        assert result.clean, [f.location() for f in result.findings]

    def test_no_baseline_file_is_shipped(self):
        """The grandfathered-findings file is gone: debt stays at zero."""
        assert not (REPO_ROOT / "repro-lint-baseline.json").exists()


# ----------------------------------------------------------------------
# Whole-program rules: true-positive / true-negative fixture trees.
# ----------------------------------------------------------------------


def lint_tree(tmp_path: Path, files: dict[str, str], rules=None):
    """Write a fixture tree and run the engine (program rules included)."""
    for rel, source in files.items():
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source)
    engine = LintEngine(rules=get_rules(rules) if rules is not None else None)
    return engine.run([tmp_path])


class TestSEED001Provenance:
    def test_dropped_seed_flagged(self, tmp_path):
        result = lint_tree(tmp_path, {
            "src/repro/machine/build.py":
                "def build_machine(seed):\n"
                "    table = [0] * 4\n"
                "    return table\n",
        }, rules=["SEED001"])
        assert rules_of(result.findings) == ["SEED001"]
        assert "dropped" in result.findings[0].message

    def test_underscore_prefix_declares_unused(self, tmp_path):
        result = lint_tree(tmp_path, {
            "src/repro/machine/build.py":
                "def build_machine(_seed):\n"
                "    return [0] * 4\n",
        }, rules=["SEED001"])
        assert result.clean

    def test_constant_rng_beside_ignored_seed_flagged(self, tmp_path):
        result = lint_tree(tmp_path, {
            "src/repro/machine/streams.py":
                "from repro.rng import RandomStream\n"
                "def make(seed):\n"
                "    stream = RandomStream(42)\n"
                "    return stream, seed\n",
        }, rules=["SEED001"])
        assert rules_of(result.findings) == ["SEED001"]
        assert "constant" in result.findings[0].message

    def test_shadowed_seed_flagged(self, tmp_path):
        result = lint_tree(tmp_path, {
            "src/repro/machine/streams.py":
                "from repro.rng import RandomStream\n"
                "def make(seed):\n"
                "    seed = 7\n"
                "    return RandomStream(seed)\n",
        }, rules=["SEED001"])
        assert rules_of(result.findings) == ["SEED001"]
        assert "reassigned" in result.findings[0].message

    def test_threaded_seed_chain_is_clean(self, tmp_path):
        """True negative: the seed flows caller -> callee -> RNG."""
        result = lint_tree(tmp_path, {
            "src/repro/machine/worker.py":
                "from repro.rng import RandomStream\n"
                "def simulate(run_seed):\n"
                "    return RandomStream(run_seed)\n",
            "src/repro/machine/driver.py":
                "from repro.machine.worker import simulate\n"
                "from repro.rng import derive_seed\n"
                "def drive(seed):\n"
                "    return simulate(derive_seed(seed, 'worker'))\n",
        }, rules=["SEED001"])
        assert result.clean, [f.message for f in result.findings]

    def test_breaking_seed_threading_is_caught_end_to_end(self, tmp_path):
        """The acceptance check: severing an inter-module seed chain

        that lints clean must produce a SEED001 finding at the exact
        call site where the constant replaced the seed.
        """
        good = {
            "src/repro/machine/worker.py":
                "from repro.rng import RandomStream\n"
                "def simulate(run_seed):\n"
                "    return RandomStream(run_seed)\n",
            "src/repro/machine/driver.py":
                "from repro.machine.worker import simulate\n"
                "from repro.rng import derive_seed\n"
                "def drive(seed):\n"
                "    return simulate(run_seed=derive_seed(seed, 'w'))\n",
        }
        assert lint_tree(tmp_path / "good", good, rules=["SEED001"]).clean
        broken = dict(good)
        broken["src/repro/machine/driver.py"] = broken[
            "src/repro/machine/driver.py"
        ].replace("run_seed=derive_seed(seed, 'w')", "run_seed=1234")
        result = lint_tree(tmp_path / "broken", broken, rules=["SEED001"])
        # Severing the chain yields two diagnoses: the call site passes
        # a constant, and drive()'s own seed is now dropped entirely.
        assert set(rules_of(result.findings)) == {"SEED001"}
        threaded = [f for f in result.findings if "not threaded" in f.message]
        assert len(threaded) == 1
        assert threaded[0].path.endswith("driver.py")
        assert threaded[0].line == 4
        assert any("dropped" in f.message for f in result.findings)

    def test_sanctioned_root_seed_constant_is_clean(self, tmp_path):
        """Published MASTER_SEED-style roots are provenance, not hazards."""
        result = lint_tree(tmp_path, {
            "src/repro/machine/roots.py":
                "from repro.rng import RandomStream, derive_seed\n"
                "MASTER_SEED = 0x5EED\n"
                "def entry(name, seed):\n"
                "    return RandomStream(derive_seed(seed, name))\n"
                "def default_entry(name):\n"
                "    return RandomStream(derive_seed(MASTER_SEED, name))\n",
        }, rules=["SEED001"])
        assert result.clean, [f.message for f in result.findings]


class TestPURE001ObservationPurity:
    OBSERVER = (
        "from repro.machine.engine import run_machine\n"
        "class Interferometer:\n"
        "    def observe(self, spec):\n"
        "        return run_machine(spec)\n"
    )

    def test_print_on_observation_path_flagged(self, tmp_path):
        result = lint_tree(tmp_path, {
            "src/repro/core/interf.py": self.OBSERVER,
            "src/repro/machine/engine.py":
                "def run_machine(spec):\n"
                "    print('measuring', spec)\n"
                "    return 0\n",
        }, rules=["PURE001"])
        assert rules_of(result.findings) == ["PURE001"]
        assert "print" in result.findings[0].message

    def test_clock_read_on_observation_path_flagged(self, tmp_path):
        result = lint_tree(tmp_path, {
            "src/repro/core/interf.py": self.OBSERVER,
            "src/repro/machine/engine.py":
                "import time\n"
                "def run_machine(spec):\n"
                "    started = time.perf_counter()\n"
                "    return started\n",
        }, rules=["PURE001"])
        assert rules_of(result.findings) == ["PURE001"]

    def test_module_state_mutation_flagged(self, tmp_path):
        result = lint_tree(tmp_path, {
            "src/repro/core/interf.py": self.OBSERVER,
            "src/repro/machine/engine.py":
                "_CACHE = {}\n"
                "def run_machine(spec):\n"
                "    _CACHE.update({spec: 1})\n"
                "    return 0\n",
        }, rules=["PURE001"])
        assert rules_of(result.findings) == ["PURE001"]
        assert "_CACHE" in result.findings[0].message

    def test_pure_observation_path_is_clean(self, tmp_path):
        """True negative: arithmetic-only measurement code."""
        result = lint_tree(tmp_path, {
            "src/repro/core/interf.py": self.OBSERVER,
            "src/repro/machine/engine.py":
                "def run_machine(spec):\n"
                "    return sum(ord(c) for c in spec)\n",
        }, rules=["PURE001"])
        assert result.clean, [f.message for f in result.findings]

    def test_impurity_off_the_observation_path_is_clean(self, tmp_path):
        """I/O in measurement-core code observe() never reaches is fine
        for PURE001 (other rules police it on their own terms)."""
        result = lint_tree(tmp_path, {
            "src/repro/core/interf.py": self.OBSERVER,
            "src/repro/machine/engine.py":
                "def run_machine(spec):\n"
                "    return 0\n"
                "def debug_dump(spec):\n"
                "    print(spec)\n",
        }, rules=["PURE001"])
        assert result.clean, [f.message for f in result.findings]


class TestEXC001ExceptionContract:
    def test_builtin_raise_on_campaign_path_flagged(self, tmp_path):
        result = lint_tree(tmp_path, {
            "src/repro/core/runner.py":
                "def run(x):\n"
                "    if x < 0:\n"
                "        raise ValueError('negative')\n"
                "    return x\n",
        }, rules=["EXC001"])
        assert rules_of(result.findings) == ["EXC001"]
        assert "ValueError" in result.findings[0].message

    def test_repro_errors_raise_is_clean(self, tmp_path):
        result = lint_tree(tmp_path, {
            "src/repro/core/runner.py":
                "from repro.errors import ConfigurationError\n"
                "def run(x):\n"
                "    if x < 0:\n"
                "        raise ConfigurationError('negative')\n"
                "    return x\n",
        }, rules=["EXC001"])
        assert result.clean, [f.message for f in result.findings]

    def test_local_subclass_closure_is_clean(self, tmp_path):
        """A class transitively deriving from ReproError is in-tree,
        even when the subclass lives in another scanned module."""
        result = lint_tree(tmp_path, {
            "src/repro/core/local_errors.py":
                "from repro.errors import ReproError\n"
                "class PipelineError(ReproError):\n"
                "    pass\n",
            "src/repro/core/runner.py":
                "from repro.core.local_errors import PipelineError\n"
                "class StageError(PipelineError):\n"
                "    pass\n"
                "def run(x):\n"
                "    if x < 0:\n"
                "        raise StageError('negative')\n"
                "    return x\n",
        }, rules=["EXC001"])
        assert result.clean, [f.message for f in result.findings]

    def test_out_of_tree_class_flagged(self, tmp_path):
        result = lint_tree(tmp_path, {
            "src/repro/core/runner.py":
                "class LocalError(Exception):\n"
                "    pass\n"
                "def run(x):\n"
                "    raise LocalError('boom')\n",
        }, rules=["EXC001"])
        assert rules_of(result.findings) == ["EXC001"]
        assert "LocalError" in result.findings[0].message

    def test_assertion_and_not_implemented_allowed(self, tmp_path):
        result = lint_tree(tmp_path, {
            "src/repro/core/runner.py":
                "def run(x):\n"
                "    if x is None:\n"
                "        raise AssertionError('invariant')\n"
                "    raise NotImplementedError\n",
        }, rules=["EXC001"])
        assert result.clean, [f.message for f in result.findings]

    def test_out_of_scope_code_unpoliced(self, tmp_path):
        """True negative: the contract binds campaign-path code only."""
        result = lint_tree(tmp_path, {
            "src/repro/lint/checker.py":
                "def run(x):\n"
                "    raise ValueError('fine here')\n",
        }, rules=["EXC001"])
        assert result.clean, [f.message for f in result.findings]


class TestCONC001WorkerBoundary:
    def test_lambda_callable_flagged(self, tmp_path):
        result = lint_tree(tmp_path, {
            "src/repro/core/parallel.py":
                "from concurrent.futures import ProcessPoolExecutor\n"
                "def run_all(specs):\n"
                "    with ProcessPoolExecutor() as pool:\n"
                "        futures = [pool.submit(lambda s: s, spec)\n"
                "                   for spec in specs]\n"
                "    return futures\n",
        }, rules=["CONC001"])
        assert rules_of(result.findings) == ["CONC001"]
        assert "lambda" in result.findings[0].message

    def test_bound_method_callable_flagged(self, tmp_path):
        result = lint_tree(tmp_path, {
            "src/repro/core/parallel.py":
                "from concurrent.futures import ProcessPoolExecutor\n"
                "class Runner:\n"
                "    def go(self, specs):\n"
                "        with ProcessPoolExecutor() as pool:\n"
                "            return [pool.submit(self.work, s) for s in specs]\n"
                "    def work(self, s):\n"
                "        return s\n",
        }, rules=["CONC001"])
        assert rules_of(result.findings) == ["CONC001"]
        assert "bound method" in result.findings[0].message

    def test_live_rng_argument_flagged(self, tmp_path):
        result = lint_tree(tmp_path, {
            "src/repro/core/parallel.py":
                "from concurrent.futures import ProcessPoolExecutor\n"
                "from repro.rng import RandomStream\n"
                "def work(stream):\n"
                "    return stream\n"
                "def run_all():\n"
                "    stream = RandomStream(7)\n"
                "    with ProcessPoolExecutor() as pool:\n"
                "        return pool.submit(work, stream)\n",
        }, rules=["CONC001"])
        assert rules_of(result.findings) == ["CONC001"]
        assert "RNG" in result.findings[0].message

    def test_mutable_dataclass_argument_flagged(self, tmp_path):
        result = lint_tree(tmp_path, {
            "src/repro/core/parallel.py":
                "from concurrent.futures import ProcessPoolExecutor\n"
                "from dataclasses import dataclass\n"
                "@dataclass\n"
                "class Spec:\n"
                "    x: int = 0\n"
                "def work(spec):\n"
                "    return spec.x\n"
                "def run_all():\n"
                "    with ProcessPoolExecutor() as pool:\n"
                "        return pool.submit(work, Spec())\n",
        }, rules=["CONC001"])
        assert rules_of(result.findings) == ["CONC001"]
        assert "frozen" in result.findings[0].hint or "frozen" in result.findings[0].message

    def test_frozen_spec_to_module_function_is_clean(self, tmp_path):
        """True negative: the park.py idiom — a frozen dataclass spec
        submitted to a module-level worker function."""
        result = lint_tree(tmp_path, {
            "src/repro/core/parallel.py":
                "from concurrent.futures import ProcessPoolExecutor\n"
                "from dataclasses import dataclass\n"
                "@dataclass(frozen=True)\n"
                "class Spec:\n"
                "    x: int = 0\n"
                "def work(spec):\n"
                "    return spec.x\n"
                "def run_all(xs):\n"
                "    specs = [Spec(x) for x in xs]\n"
                "    with ProcessPoolExecutor() as pool:\n"
                "        futures = [pool.submit(work, s) for s in specs]\n"
                "    return futures\n",
        }, rules=["CONC001"])
        assert result.clean, [f.message for f in result.findings]

    def test_thread_pool_is_exempt(self, tmp_path):
        """ThreadPoolExecutor pickles nothing; lambdas are legal there."""
        result = lint_tree(tmp_path, {
            "src/repro/core/parallel.py":
                "from concurrent.futures import ThreadPoolExecutor\n"
                "def run_all(specs):\n"
                "    with ThreadPoolExecutor() as pool:\n"
                "        return [pool.submit(lambda s: s, x) for x in specs]\n",
        }, rules=["CONC001"])
        assert result.clean, [f.message for f in result.findings]


class TestProgramRulePlumbing:
    def test_inline_suppression_waives_program_finding(self, tmp_path):
        result = lint_tree(tmp_path, {
            "src/repro/machine/build.py":
                "# repro: allow-SEED001 interface parity with seeded allocators\n"
                "def build_machine(seed):\n"
                "    return [0] * 4\n",
        }, rules=["SEED001"])
        assert result.clean
        assert rules_of(result.suppressed) == ["SEED001"]

    def test_program_findings_respect_baseline(self, tmp_path):
        files = {
            "src/repro/machine/build.py":
                "def build_machine(seed):\n"
                "    return [0] * 4\n",
        }
        first = lint_tree(tmp_path, files, rules=["SEED001"])
        assert not first.clean
        baseline = Baseline.from_findings(first.findings)
        engine = LintEngine(rules=get_rules(["SEED001"]))
        second = engine.run([tmp_path], baseline=baseline)
        assert second.clean
        assert rules_of(second.baselined) == ["SEED001"]


# ----------------------------------------------------------------------
# CLI: exit codes and --json schema.
# ----------------------------------------------------------------------


class TestCli:
    def run_cli(self, *argv):
        import contextlib
        import io

        out, err = io.StringIO(), io.StringIO()
        with contextlib.redirect_stdout(out), contextlib.redirect_stderr(err):
            code = lint_main(list(argv))
        return code, out.getvalue(), err.getvalue()

    def make_tree(self, tmp_path, source):
        mod = tmp_path / "src/repro/machine/mod.py"
        mod.parent.mkdir(parents=True)
        mod.write_text(source)
        return tmp_path / "src"

    def test_exit_0_on_clean_tree(self, tmp_path):
        root = self.make_tree(tmp_path, "x = 1\n")
        code, out, _ = self.run_cli(str(root))
        assert code == 0
        assert "0 finding(s)" in out

    def test_exit_1_on_findings(self, tmp_path):
        root = self.make_tree(tmp_path, "import random\nx = random.random()\n")
        code, out, _ = self.run_cli(str(root))
        assert code == 1
        assert "DET001" in out

    def test_exit_2_on_bad_path_and_bad_rule(self, tmp_path):
        code, _, err = self.run_cli(str(tmp_path / "missing"))
        assert code == 2
        assert "error" in err
        code, _, err = self.run_cli("--rules", "DET999", str(tmp_path))
        assert code == 2

    def test_json_schema(self, tmp_path):
        root = self.make_tree(tmp_path, "import random\nx = random.random()\n")
        code, out, _ = self.run_cli(str(root), "--json")
        assert code == 1
        payload = json.loads(out)
        assert payload["version"] == 3
        assert payload["rule_set"] == [r.id for r in all_rules()]
        assert payload["clean"] is False
        assert payload["summary"]["findings"] == 1
        assert payload["summary"]["by_rule"] == {"DET001": 1}
        timing = payload["timing"]
        assert timing["per_file_seconds"] >= 0.0
        assert timing["total_seconds"] >= timing["per_file_seconds"]
        assert set(timing["program_rules"]) == {
            r.id for r in all_rules() if hasattr(r, "check_program")
        }
        finding = payload["findings"][0]
        assert set(finding) == {
            "rule", "severity", "path", "line", "col", "message", "hint",
            "fingerprint",
        }
        assert finding["rule"] == "DET001"
        assert finding["line"] == 2
        assert "DET001" in payload["rules"]
        assert payload["rules"]["DET001"]["severity"] == "error"

    def test_json_output_is_byte_stable(self, tmp_path):
        # The timing key is wall-clock telemetry — the one sanctioned
        # nondeterminism in the payload; everything else must be
        # byte-identical across runs.
        root = self.make_tree(tmp_path, "import random\nx = random.random()\n")
        _, first, _ = self.run_cli(str(root), "--json")
        _, second, _ = self.run_cli(str(root), "--json")
        a, b = json.loads(first), json.loads(second)
        a.pop("timing"), b.pop("timing")
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)

    def test_write_then_check_baseline_roundtrip(self, tmp_path):
        root = self.make_tree(tmp_path, "import random\nx = random.random()\n")
        baseline = tmp_path / "baseline.json"
        code, _, _ = self.run_cli(str(root), "--write-baseline", str(baseline))
        assert code == 0
        code, out, _ = self.run_cli(str(root), "--baseline", str(baseline))
        assert code == 0
        assert "1 baselined" in out

    def test_list_rules(self):
        code, out, _ = self.run_cli("--list-rules")
        assert code == 0
        for rule in all_rules():
            assert rule.id in out

    def test_module_entry_point(self, tmp_path):
        root = self.make_tree(tmp_path, "x = 1\n")
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get(
            "PYTHONPATH", ""
        )
        proc = subprocess.run(
            [sys.executable, "-m", "repro.lint", str(root)],
            capture_output=True,
            text=True,
            env=env,
        )
        assert proc.returncode == 0, proc.stderr

    def test_repro_cli_dispatches_lint(self, tmp_path):
        from repro.cli import cli_main

        root = self.make_tree(tmp_path, "import random\nx = random.random()\n")
        import contextlib
        import io

        out = io.StringIO()
        with contextlib.redirect_stdout(out):
            code = cli_main(["lint", str(root)])
        assert code == 1
        assert "DET001" in out.getvalue()


# ----------------------------------------------------------------------
# Runtime sanitizer.
# ----------------------------------------------------------------------


def _call_from_repro_frame(fn, *args, **kwargs):
    """Invoke *fn* with the call frame attributed to repro library code.

    Compiles a stub at a filename inside ``src/repro`` so the
    sanitizer's caller check classifies the frame as library code.
    """
    fake = str(REPO_ROOT / "src" / "repro" / "machine" / "_sanitizer_probe.py")
    code = compile("result = fn(*args, **kwargs)\n", fake, "exec")
    namespace = {"fn": fn, "args": args, "kwargs": kwargs}
    exec(code, namespace)
    return namespace["result"]


class TestSanitizer:
    def test_traps_global_random_from_repro_frames(self):
        with DeterminismSanitizer():
            with pytest.raises(DeterminismViolation) as excinfo:
                _call_from_repro_frame(random.random)
        assert "random.random()" in str(excinfo.value)
        assert "repro.rng" in str(excinfo.value)

    def test_traps_wall_clock_from_repro_frames(self):
        with DeterminismSanitizer():
            with pytest.raises(DeterminismViolation):
                _call_from_repro_frame(time.time)
            with pytest.raises(DeterminismViolation):
                _call_from_repro_frame(time.perf_counter)

    def test_traps_unsorted_scans_from_repro_frames(self, tmp_path):
        with DeterminismSanitizer():
            with pytest.raises(DeterminismViolation):
                _call_from_repro_frame(os.listdir, str(tmp_path))
            with pytest.raises(DeterminismViolation):
                _call_from_repro_frame(glob_module.glob, str(tmp_path / "*"))
            with pytest.raises(DeterminismViolation):
                _call_from_repro_frame(pathlib.Path(str(tmp_path)).iterdir)

    def test_third_party_frames_pass_through(self, tmp_path):
        with DeterminismSanitizer():
            # This test file is outside src/repro: everything works.
            assert isinstance(random.random(), float)  # repro: allow-DET001 deliberate hazard proving non-repro frames pass through
            assert time.time() > 0  # repro: allow-DET002 deliberate hazard proving non-repro frames pass through
            assert os.listdir(str(tmp_path)) == []  # repro: allow-DET003 deliberate hazard proving non-repro frames pass through
            assert list(tmp_path.iterdir()) == []  # repro: allow-DET003 deliberate hazard proving non-repro frames pass through

    def test_telemetry_module_exempt_under_sanitizer(self):
        from repro import telemetry

        with DeterminismSanitizer():
            assert telemetry.tick_seconds() >= 0
            assert telemetry.wall_seconds() > 0

    def test_repro_rng_streams_work_under_sanitizer(self):
        from repro.rng import RandomStream

        with DeterminismSanitizer():
            stream = RandomStream(7).fork("sanitized")
            values = [stream.uniform() for _ in range(4)]
        replay = RandomStream(7).fork("sanitized")
        assert values == [replay.uniform() for _ in range(4)]

    def test_patches_are_restored_on_exit(self):
        before = (random.random, time.time, os.listdir, pathlib.Path.iterdir)
        with DeterminismSanitizer():
            assert random.random is not before[0]
        after = (random.random, time.time, os.listdir, pathlib.Path.iterdir)
        assert before == after

    def test_nested_sanitizers_unwind_cleanly(self):
        before = random.random
        with DeterminismSanitizer():
            with DeterminismSanitizer():
                with pytest.raises(DeterminismViolation):
                    _call_from_repro_frame(random.random)
            with pytest.raises(DeterminismViolation):
                _call_from_repro_frame(random.random)
        assert random.random is before

    def test_measurement_pipeline_runs_sanitized(self):
        """The core invariant: a real campaign is hazard-free end to end."""
        from repro.core.interferometer import Interferometer
        from repro.machine.system import XeonE5440
        from repro.workloads.suite import get_benchmark

        machine = XeonE5440(seed=11)
        interferometer = Interferometer(machine, trace_events=3000)
        benchmark = get_benchmark("400.perlbench")
        with DeterminismSanitizer():
            sanitized = interferometer.observe(benchmark, n_layouts=4)
        replay = interferometer.observe(benchmark, n_layouts=4)
        assert [o.measurement.counters for o in sanitized] == [
            o.measurement.counters for o in replay
        ]

    def test_sanitize_requested_parses_env(self):
        assert sanitize_requested({"REPRO_SANITIZE": "1"})
        assert sanitize_requested({"REPRO_SANITIZE": "true"})
        assert not sanitize_requested({"REPRO_SANITIZE": "0"})
        assert not sanitize_requested({})


class TestSanitizerCatchesSeededHazard:
    """Acceptance scenario: an un-suppressed hazard fails the run.

    The hazard body is compiled at a ``src/repro/machine/`` filename,
    exactly as if someone had slipped ``random.random()`` into the
    measurement core: the sanitized run must fail.
    """

    def test_seeded_hazard_in_machine_code_traps(self):
        fake = str(
            REPO_ROOT / "src" / "repro" / "machine" / "_seeded_hazard.py"
        )
        hazard = compile(
            "import random\nresult = random.random()\n", fake, "exec"
        )
        with DeterminismSanitizer():
            with pytest.raises(DeterminismViolation):
                exec(hazard, {})
