"""Tests for the interferometer and observation sets."""

from __future__ import annotations

import pytest

from repro.core.interferometer import Interferometer, heap_seed, layout_seed
from repro.core.observations import Observation, ObservationSet
from repro.errors import ConfigurationError, ModelError


@pytest.fixture(scope="module")
def interferometer(machine):
    return Interferometer(machine, trace_events=2000)


@pytest.fixture(scope="module")
def observations(interferometer, perlbench):
    return interferometer.observe(perlbench, n_layouts=6)


class TestSeeds:
    def test_layout_seed_deterministic(self):
        assert layout_seed("x", 3) == layout_seed("x", 3)

    def test_layout_seeds_distinct(self):
        seeds = {layout_seed("400.perlbench", i) for i in range(200)}
        assert len(seeds) == 200

    def test_layout_seeds_differ_per_benchmark(self):
        assert layout_seed("a", 0) != layout_seed("b", 0)

    def test_heap_seed_differs_from_layout_seed(self):
        assert heap_seed("a", 0) != layout_seed("a", 0)

    def test_negative_index_rejected(self):
        with pytest.raises(ConfigurationError):
            layout_seed("a", -1)


class TestObserve:
    def test_observation_count(self, observations):
        assert len(observations) == 6

    def test_layout_indices_sequential(self, observations):
        assert [obs.layout_index for obs in observations] == list(range(6))

    def test_metrics_accessible(self, observations):
        assert observations.cpis.shape == (6,)
        assert observations.mpkis.shape == (6,)
        assert (observations.series("l2_mpki") >= 0).all()

    def test_unknown_metric(self, observations):
        with pytest.raises(ModelError):
            observations.series("nope")

    def test_mean(self, observations):
        assert observations.mean("cpi") == pytest.approx(float(observations.cpis.mean()))

    def test_empty_series_rejected(self):
        with pytest.raises(ModelError):
            ObservationSet(benchmark="x").series("cpi")

    def test_extend_continues_indices(self, interferometer, perlbench, observations):
        extended = ObservationSet(benchmark=perlbench.name)
        extended.extend(observations.observations)
        interferometer.extend(perlbench, extended, n_more=2)
        assert len(extended) == 8
        assert extended.observations[-1].layout_index == 7

    def test_same_layout_same_measurement(self, interferometer, perlbench):
        a = interferometer.observe_one(perlbench, 0)
        b = interferometer.observe_one(perlbench, 0)
        assert a.measurement.counters == b.measurement.counters

    def test_cpis_vary_across_layouts(self, observations):
        assert observations.cpis.std() > 0.0

    def test_heap_seeds_absent_by_default(self, observations):
        assert all(obs.heap_seed is None for obs in observations)

    def test_bad_layout_count(self, interferometer, perlbench):
        with pytest.raises(ConfigurationError):
            interferometer.observe(perlbench, n_layouts=0)


class TestHeapMode:
    def test_heap_seeds_assigned(self, machine, perlbench):
        interferometer = Interferometer(
            machine, trace_events=2000, randomize_heap=True
        )
        obs = interferometer.observe(perlbench, n_layouts=3)
        assert all(o.heap_seed is not None for o in obs)
        assert len({o.heap_seed for o in obs}) == 3


class TestCorePinning:
    def test_core_stable_per_benchmark(self, interferometer):
        assert interferometer.core_for("403.gcc") == interferometer.core_for("403.gcc")

    def test_core_in_range(self, interferometer, machine):
        for name in ("a", "b", "c", "d"):
            assert 0 <= interferometer.core_for(name) < machine.n_cores
