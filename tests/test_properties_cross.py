"""Cross-module property tests (hypothesis): the invariants the whole
reproduction rests on, checked over randomized seeds."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.interferometer import layout_seed
from repro.machine.system import XeonE5440
from repro.toolchain.camino import Camino
from repro.toolchain.linker import link
from repro.workloads.suite import get_benchmark

from tests.conftest import make_tiny_spec

_CAMINO = Camino()
_SPEC = make_tiny_spec()


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=40, deadline=None)
def test_property_reorder_is_always_linkable(seed):
    """Every seeded reordering links: all symbols, once, non-overlapping."""
    objects = _CAMINO.reorder(_SPEC, seed)
    layout = link(_SPEC, objects)
    spans = sorted(
        (int(layout.proc_base[i]), int(layout.proc_base[i]) + proc.size_bytes)
        for i, proc in enumerate(_SPEC.procedures)
    )
    for (lo_a, hi_a), (lo_b, _) in zip(spans, spans[1:]):
        assert hi_a <= lo_b


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=30, deadline=None)
def test_property_text_size_layout_invariant(seed):
    """Total code size never depends on the ordering (modulo alignment)."""
    baseline = _CAMINO.link_layout(_SPEC, seed=None)
    reordered = _CAMINO.link_layout(_SPEC, seed=seed)
    # Alignment padding can differ by at most (alignment-1) per procedure.
    slack = 16 * len(_SPEC.procedures)
    assert abs(reordered.text_size - baseline.text_size) <= slack


@given(seed_a=st.integers(min_value=0, max_value=500),
       seed_b=st.integers(min_value=0, max_value=500))
@settings(max_examples=20, deadline=None)
def test_property_semantics_layout_invariant(tiny_trace_module, seed_a, seed_b):
    """Any two layouts retire identical instructions and outcomes."""
    trace = tiny_trace_module
    exe_a = _CAMINO.build(_SPEC, trace, layout_seed=seed_a)
    exe_b = _CAMINO.build(_SPEC, trace, layout_seed=seed_b)
    assert exe_a.n_instructions == exe_b.n_instructions
    assert (exe_a.trace.outcomes == exe_b.trace.outcomes).all()
    assert (exe_a.trace.site_ids == exe_b.trace.site_ids).all()


@pytest.fixture(scope="module")
def tiny_trace_module():
    from repro.program.tracegen import generate_trace

    return generate_trace(_SPEC, seed=42, n_events=800)


@given(index=st.integers(min_value=0, max_value=50))
@settings(max_examples=25, deadline=None)
def test_property_measurement_idempotent(index):
    """Measuring the same layout twice gives identical counters — the
    reproducibility claim of §1 ('runs are reproducible')."""
    from repro.machine.pmc import measure_executable

    machine = XeonE5440(seed=4)
    benchmark = get_benchmark("456.hmmer")
    trace = benchmark.trace(2000)
    camino = Camino()
    seed = layout_seed(benchmark.name, index)
    exe_a = camino.build(benchmark.spec, trace, layout_seed=seed)
    exe_b = camino.build(benchmark.spec, trace, layout_seed=seed)
    m_a = measure_executable(machine, exe_a)
    m_b = measure_executable(machine, exe_b)
    assert dict(m_a.counters) == dict(m_b.counters)


@given(warmup_fraction=st.floats(min_value=0.0, max_value=0.9))
@settings(max_examples=15, deadline=None)
def test_property_warmup_monotone(warmup_fraction):
    """Counting a smaller window never yields more mispredictions."""
    from repro.uarch.predictors.bimodal import BimodalPredictor

    rng = np.random.default_rng(7)
    outcomes = (rng.random(600) < 0.7).astype(np.uint8)
    addresses = rng.integers(0x400000, 0x404000, 600)
    predictor = BimodalPredictor(256)
    full = predictor.simulate(addresses, outcomes)
    warm = predictor.simulate(
        addresses, outcomes, warmup=int(600 * warmup_fraction)
    )
    assert warm <= full
