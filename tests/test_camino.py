"""Tests for the Camino toolchain: reordering, run-limit, building."""

from __future__ import annotations

import pytest

from repro.toolchain.camino import Camino, RunLimitPass

from tests.conftest import make_tiny_spec


@pytest.fixture(scope="module")
def spec():
    return make_tiny_spec()


class TestReordering:
    def test_seeded_reorder_deterministic(self, spec, camino):
        a = camino.reorder(spec, seed=5)
        b = camino.reorder(spec, seed=5)
        assert [(o.name, o.procedure_names) for o in a] == [
            (o.name, o.procedure_names) for o in b
        ]

    def test_different_seeds_differ(self, spec, camino):
        orderings = set()
        for seed in range(20):
            objs = camino.reorder(spec, seed=seed)
            orderings.add(tuple((o.name, o.procedure_names) for o in objs))
        assert len(orderings) > 10

    def test_reorder_permutes_within_files(self, spec, camino):
        base = {f.name: set(f.procedure_names) for f in spec.files}
        for obj in camino.reorder(spec, seed=3):
            assert set(obj.procedure_names) == base[obj.name]

    def test_reorder_preserves_file_set(self, spec, camino):
        objs = camino.reorder(spec, seed=3)
        assert {o.name for o in objs} == {f.name for f in spec.files}

    def test_base_objects_match_declaration(self, spec, camino):
        objs = camino.base_object_files(spec)
        assert [o.procedure_names for o in objs] == [f.procedure_names for f in spec.files]

    def test_layouts_differ_across_seeds(self, spec, camino):
        a = camino.link_layout(spec, seed=1)
        b = camino.link_layout(spec, seed=2)
        assert list(a.proc_base) != list(b.proc_base)

    def test_baseline_layout(self, spec, camino):
        layout = camino.link_layout(spec, seed=None)
        assert layout.link_order == tuple(
            name for f in spec.files for name in f.procedure_names
        )


class TestRunLimit:
    def test_limit_within_trace(self, tiny_trace):
        limit = RunLimitPass().choose_limit(tiny_trace)
        assert 0 < limit <= tiny_trace.n_events

    def test_limit_in_tail(self, tiny_trace):
        limit = RunLimitPass(tail_fraction=0.9).choose_limit(tiny_trace)
        # Either no candidate was found (full length) or the cutoff is
        # in the final 10% of the run.
        assert limit == tiny_trace.n_events or limit >= int(0.9 * tiny_trace.n_events)

    def test_limit_deterministic(self, tiny_trace):
        assert (
            RunLimitPass().choose_limit(tiny_trace)
            == RunLimitPass().choose_limit(tiny_trace)
        )

    def test_bad_tail_fraction(self, tiny_trace):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            RunLimitPass(tail_fraction=1.5).choose_limit(tiny_trace)


class TestBuild:
    def test_build_produces_executable(self, spec, tiny_trace, camino):
        exe = camino.build(spec, tiny_trace, layout_seed=1)
        assert exe.spec is spec
        assert exe.layout_seed == 1
        assert exe.heap_seed is None

    def test_run_limit_identical_across_layouts(self, spec, tiny_trace, camino):
        lengths = {
            camino.build(spec, tiny_trace, layout_seed=seed).trace.n_events
            for seed in range(5)
        }
        assert len(lengths) == 1  # the §5.7 invariant

    def test_instructions_identical_across_layouts(self, spec, tiny_trace, camino):
        instrs = {
            camino.build(spec, tiny_trace, layout_seed=seed).n_instructions
            for seed in range(5)
        }
        assert len(instrs) == 1

    def test_heap_randomization_changes_data_layout(self, spec, tiny_trace, camino):
        a = camino.build(spec, tiny_trace, layout_seed=1, heap_seed=10)
        b = camino.build(spec, tiny_trace, layout_seed=1, heap_seed=11)
        assert list(a.data_layout.object_base) != list(b.data_layout.object_base)

    def test_default_heap_deterministic(self, spec, tiny_trace, camino):
        a = camino.build(spec, tiny_trace, layout_seed=1)
        b = camino.build(spec, tiny_trace, layout_seed=2)
        assert list(a.data_layout.object_base) == list(b.data_layout.object_base)

    def test_baseline_build(self, spec, tiny_trace, camino):
        exe = camino.build(spec, tiny_trace, layout_seed=None)
        assert exe.layout_seed == -1

    def test_disable_run_limit(self, spec, tiny_trace, camino):
        exe = camino.build(spec, tiny_trace, layout_seed=1, apply_run_limit=False)
        assert exe.trace.n_events == tiny_trace.n_events
