"""Tests for descriptive statistics and violin profiles."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ModelError
from repro.stats.descriptive import (
    gaussian_kde_density,
    mean,
    median,
    percent_deviation_from_mean,
    percentile,
    std,
    summarize,
    variance,
    violin_profile,
)

SAMPLE = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]


class TestBasics:
    def test_mean(self):
        assert mean(SAMPLE) == pytest.approx(5.0)

    def test_population_variance(self):
        assert variance(SAMPLE, ddof=0) == pytest.approx(4.0)

    def test_sample_variance_vs_numpy(self):
        assert variance(SAMPLE) == pytest.approx(np.var(SAMPLE, ddof=1))

    def test_std(self):
        assert std(SAMPLE, ddof=0) == pytest.approx(2.0)

    def test_median_even(self):
        assert median(SAMPLE) == pytest.approx(4.5)

    def test_median_odd(self):
        assert median([3.0, 1.0, 2.0]) == pytest.approx(2.0)

    def test_percentile(self):
        assert percentile(SAMPLE, 0) == pytest.approx(2.0)
        assert percentile(SAMPLE, 100) == pytest.approx(9.0)

    def test_percentile_out_of_range(self):
        with pytest.raises(ModelError):
            percentile(SAMPLE, 120)

    def test_empty_rejected(self):
        with pytest.raises(ModelError):
            mean([])

    def test_nan_rejected(self):
        with pytest.raises(ModelError):
            mean([1.0, float("nan")])

    def test_variance_needs_two(self):
        with pytest.raises(ModelError):
            variance([1.0])


class TestDeviation:
    def test_percent_deviation_centers_on_zero(self):
        deviations = percent_deviation_from_mean(SAMPLE)
        assert deviations.mean() == pytest.approx(0.0, abs=1e-12)

    def test_percent_deviation_values(self):
        deviations = percent_deviation_from_mean([1.0, 3.0])
        assert deviations[0] == pytest.approx(-50.0)
        assert deviations[1] == pytest.approx(50.0)

    def test_zero_mean_rejected(self):
        with pytest.raises(ModelError):
            percent_deviation_from_mean([-1.0, 1.0])


class TestSummary:
    def test_summarize_fields(self):
        summary = summarize(SAMPLE)
        assert summary.n == 8
        assert summary.minimum == 2.0
        assert summary.maximum == 9.0
        assert summary.mean == pytest.approx(5.0)
        assert summary.p25 <= summary.median <= summary.p75

    def test_iqr(self):
        summary = summarize(SAMPLE)
        assert summary.iqr == pytest.approx(summary.p75 - summary.p25)

    def test_spread_percent(self):
        summary = summarize([1.0, 2.0])
        assert summary.spread_percent == pytest.approx(100.0 / 1.5)

    def test_single_observation(self):
        summary = summarize([4.2])
        assert summary.std == 0.0
        assert summary.minimum == summary.maximum == 4.2


class TestKde:
    def test_density_nonnegative(self):
        _, density = gaussian_kde_density(SAMPLE)
        assert (density >= 0.0).all()

    def test_density_integrates_to_one(self):
        grid, density = gaussian_kde_density(SAMPLE, grid_points=512)
        integral = np.trapezoid(density, grid)
        assert integral == pytest.approx(1.0, abs=0.02)

    def test_density_peaks_near_mode(self):
        grid, density = gaussian_kde_density(SAMPLE, grid_points=256)
        peak = grid[np.argmax(density)]
        assert 3.0 < peak < 6.0

    def test_custom_grid_respected(self):
        grid_in = [0.0, 5.0, 10.0]
        grid, density = gaussian_kde_density(SAMPLE, grid=grid_in)
        assert list(grid) == grid_in
        assert density.shape == (3,)

    def test_bad_bandwidth_rejected(self):
        with pytest.raises(ModelError):
            gaussian_kde_density(SAMPLE, bandwidth=0.0)

    def test_constant_sample_does_not_crash(self):
        grid, density = gaussian_kde_density([5.0, 5.0, 5.0])
        assert np.isfinite(density).all()


class TestViolin:
    def test_profile_shapes(self):
        profile = violin_profile(SAMPLE, grid_points=64)
        assert profile.grid.shape == (64,)
        assert profile.density.shape == (64,)

    def test_profile_summary_is_deviations(self):
        profile = violin_profile([1.0, 3.0])
        assert profile.summary.minimum == pytest.approx(-50.0)
        assert profile.summary.maximum == pytest.approx(50.0)

    def test_max_abs_deviation(self):
        profile = violin_profile([1.0, 3.0])
        assert profile.max_abs_deviation == pytest.approx(50.0)


@given(
    values=st.lists(
        st.floats(min_value=0.5, max_value=100.0, allow_nan=False), min_size=2, max_size=40
    )
)
@settings(max_examples=60, deadline=None)
def test_property_summary_ordering(values):
    summary = summarize(values)
    assert summary.minimum <= summary.p25 <= summary.median <= summary.p75 <= summary.maximum
    tol = 1e-9 * max(1.0, abs(summary.maximum), abs(summary.minimum))
    assert summary.minimum - tol <= summary.mean <= summary.maximum + tol
