"""Tests for the branch target buffer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.uarch.btb import BranchTargetBuffer


def _stream(pcs, outcomes):
    return np.array(pcs, dtype=np.int64), np.array(outcomes, dtype=np.uint8)


class TestBtb:
    def test_first_taken_misses_then_hits(self):
        addresses, outcomes = _stream([0x1000, 0x1000, 0x1000], [1, 1, 1])
        assert BranchTargetBuffer(entries=64, associativity=2).simulate(
            addresses, outcomes
        ) == 1

    def test_not_taken_never_misses(self):
        addresses, outcomes = _stream([0x1000] * 5, [0] * 5)
        assert BranchTargetBuffer().simulate(addresses, outcomes) == 0

    def test_conflict_eviction(self):
        # 4 entries, 1-way => 4 sets. Five distinct taken branches mapping
        # to the same set thrash it.
        btb = BranchTargetBuffer(entries=4, associativity=1)
        pcs = [0x1000, 0x1040, 0x1000, 0x1040] * 10
        addresses, outcomes = _stream(pcs, [1] * len(pcs))
        # 0x1000>>2=0x400, 0x1040>>2=0x410: set = idx & 3 -> both set 0.
        assert btb.simulate(addresses, outcomes) == len(pcs)

    def test_associativity_absorbs(self):
        btb = BranchTargetBuffer(entries=8, associativity=2)
        pcs = [0x1000, 0x1040, 0x1000, 0x1040] * 10
        addresses, outcomes = _stream(pcs, [1] * len(pcs))
        assert btb.simulate(addresses, outcomes) == 2

    def test_warmup_excludes_cold_misses(self):
        addresses, outcomes = _stream([0x1000, 0x2000, 0x1000, 0x2000], [1, 1, 1, 1])
        btb = BranchTargetBuffer(entries=64, associativity=4)
        assert btb.simulate(addresses, outcomes, warmup=2) == 0

    def test_scalar_interface(self):
        btb = BranchTargetBuffer(entries=64, associativity=2)
        assert btb.lookup_and_update(0x1000, taken=1) is True
        assert btb.lookup_and_update(0x1000, taken=1) is False
        assert btb.lookup_and_update(0x9999, taken=0) is False

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BranchTargetBuffer(entries=100)
        with pytest.raises(ConfigurationError):
            BranchTargetBuffer(entries=64, associativity=3)
