"""Tests for the synthetic SPEC CPU 2006 suite."""

from __future__ import annotations

import pytest

from repro.errors import WorkloadError
from repro.workloads.generators import build_spec
from repro.workloads.params import (
    MASE_BENCHMARKS,
    MASE_EXTRA,
    PERSONALITIES,
)
from repro.workloads.suite import get_benchmark, mase_suite, spec2006


class TestSuiteRegistry:
    def test_twenty_three_benchmarks(self):
        assert len(PERSONALITIES) == 23
        assert len(spec2006()) == 23

    def test_expected_names_present(self):
        for name in ("400.perlbench", "429.mcf", "471.omnetpp", "483.xalancbmk"):
            assert name in PERSONALITIES

    def test_three_insensitive(self):
        insensitive = [p for p in PERSONALITIES.values() if not p.expected_significant]
        assert {p.name for p in insensitive} == {"410.bwaves", "433.milc", "470.lbm"}

    def test_mase_suite(self):
        suite = mase_suite()
        assert len(suite) == len(MASE_BENCHMARKS) == 14
        assert "252.eon" in suite
        assert "178.galgel" in suite
        assert "458.sjeng" in suite

    def test_mase_extra_not_in_main_suite(self):
        assert not set(MASE_EXTRA) & set(PERSONALITIES)

    def test_unknown_benchmark(self):
        with pytest.raises(WorkloadError):
            get_benchmark("999.nope")

    def test_get_benchmark_mase_only(self):
        assert get_benchmark("252.eon").name == "252.eon"


class TestGeneration:
    def test_spec_deterministic(self):
        a = build_spec(PERSONALITIES["401.bzip2"])
        b = build_spec(PERSONALITIES["401.bzip2"])
        assert a.digest == b.digest

    def test_different_benchmarks_differ(self):
        a = build_spec(PERSONALITIES["401.bzip2"])
        b = build_spec(PERSONALITIES["403.gcc"])
        assert a.digest != b.digest

    def test_spec_matches_personality(self):
        for name in ("400.perlbench", "429.mcf"):
            personality = PERSONALITIES[name]
            spec = build_spec(personality)
            assert len(spec.procedures) == personality.n_procedures
            assert len(spec.files) == personality.n_files
            assert len(spec.heap_objects) == personality.n_heap_objects
            lo, hi = personality.sites_per_proc
            for proc in spec.procedures:
                assert lo <= len(proc.sites) <= hi

    def test_all_personalities_generate(self):
        for name, personality in list(PERSONALITIES.items()) + list(MASE_EXTRA.items()):
            spec = build_spec(personality)
            assert spec.n_sites > 0, name

    def test_intrinsic_cpi_propagated(self):
        spec = build_spec(PERSONALITIES["429.mcf"])
        assert spec.intrinsic_cpi == PERSONALITIES["429.mcf"].intrinsic_cpi


class TestTraces:
    def test_trace_cached(self, perlbench):
        assert perlbench.trace(1000) is perlbench.trace(1000)

    def test_different_lengths_not_confused(self, perlbench):
        assert perlbench.trace(1000).n_events == 1000
        assert perlbench.trace(1500).n_events == 1500

    def test_trace_shared_across_instances(self):
        a = get_benchmark("445.gobmk").trace(800)
        b = get_benchmark("445.gobmk").trace(800)
        assert a is b

    def test_trace_seed_per_benchmark(self):
        assert (
            get_benchmark("445.gobmk").trace_seed
            != get_benchmark("403.gcc").trace_seed
        )

    def test_branch_density_plausible(self, perlbench):
        trace = perlbench.trace(2000)
        density = trace.branch_density_per_kilo_instruction
        assert 80 < density < 250  # integer-code-like


class TestCalibration:
    def test_fp_benchmarks_low_mpki_structure(self):
        """The insensitive FP benchmarks have mostly trivial branches."""
        for name in ("410.bwaves", "470.lbm"):
            mix = PERSONALITIES[name].mix
            trivial = mix.get("very_easy", 0) + mix.get("loop_long", 0)
            assert trivial / sum(mix.values()) > 0.9

    def test_nonlinear_mase_couplings(self):
        assert MASE_EXTRA["178.galgel"].wrongpath_coupling > MASE_EXTRA[
            "458.sjeng"
        ].wrongpath_coupling
        assert MASE_EXTRA["252.eon"].wrongpath_coupling > PERSONALITIES[
            "473.astar"
        ].wrongpath_coupling

    def test_memory_bound_benchmarks_high_cpi(self):
        assert PERSONALITIES["429.mcf"].intrinsic_cpi > PERSONALITIES[
            "456.hmmer"
        ].intrinsic_cpi
