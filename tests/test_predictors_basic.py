"""Tests for static, perfect, and bimodal predictors."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.uarch.predictors.bimodal import BimodalPredictor
from repro.uarch.predictors.perfect import PerfectPredictor
from repro.uarch.predictors.static import (
    AlwaysNotTakenPredictor,
    AlwaysTakenPredictor,
)


def _stream(outcomes, pc=0x400000):
    outcomes = np.array(outcomes, dtype=np.uint8)
    addresses = np.full(outcomes.shape, pc, dtype=np.int64)
    return addresses, outcomes


class TestStatic:
    def test_always_taken_counts_not_taken(self):
        addresses, outcomes = _stream([1, 0, 1, 0, 0])
        assert AlwaysTakenPredictor().simulate(addresses, outcomes) == 3

    def test_always_not_taken_counts_taken(self):
        addresses, outcomes = _stream([1, 0, 1, 0, 0])
        assert AlwaysNotTakenPredictor().simulate(addresses, outcomes) == 2

    def test_complementary(self):
        rng = np.random.default_rng(0)
        outcomes = (rng.random(500) < 0.7).astype(np.uint8)
        addresses = rng.integers(0, 1 << 20, 500)
        taken = AlwaysTakenPredictor().simulate(addresses, outcomes)
        not_taken = AlwaysNotTakenPredictor().simulate(addresses, outcomes)
        assert taken + not_taken == 500

    def test_warmup_excludes_events(self):
        addresses, outcomes = _stream([0, 0, 0, 0, 1, 1])
        assert AlwaysTakenPredictor().simulate(addresses, outcomes, warmup=4) == 0

    def test_scalar_interface(self):
        predictor = AlwaysTakenPredictor()
        assert predictor.predict_and_update(0, 1)
        assert not predictor.predict_and_update(0, 0)


class TestPerfect:
    def test_zero_mispredicts(self):
        rng = np.random.default_rng(1)
        outcomes = (rng.random(200) < 0.5).astype(np.uint8)
        addresses = rng.integers(0, 1 << 20, 200)
        assert PerfectPredictor().simulate(addresses, outcomes) == 0

    def test_mpki_zero(self):
        addresses, outcomes = _stream([1, 0, 1])
        assert PerfectPredictor().mpki(addresses, outcomes, instructions=100) == 0.0


class TestBimodal:
    def test_learns_strong_bias(self):
        addresses, outcomes = _stream([1] * 100)
        # Init is weakly-taken, so an always-taken branch never misses.
        assert BimodalPredictor(entries=64).simulate(addresses, outcomes) == 0

    def test_learns_not_taken(self):
        addresses, outcomes = _stream([0] * 100)
        misses = BimodalPredictor(entries=64).simulate(addresses, outcomes)
        assert misses <= 2  # counter saturates down after two events

    def test_alternating_is_worst_case(self):
        addresses, outcomes = _stream([1, 0] * 100)
        misses = BimodalPredictor(entries=64).simulate(addresses, outcomes)
        assert misses >= 90  # 2-bit counter mispredicts most alternations

    def test_loop_costs_one_per_trip(self):
        trip = [1, 1, 1, 1, 0]
        addresses, outcomes = _stream(trip * 40)
        misses = BimodalPredictor(entries=64).simulate(addresses, outcomes)
        # one exit mispredict per trip, small training transient
        assert 35 <= misses <= 45

    def test_aliasing_hurts(self):
        rng = np.random.default_rng(2)
        n = 800
        # Two branches with opposite biases.
        outcomes = np.empty(n, dtype=np.uint8)
        outcomes[0::2] = (rng.random(n // 2) < 0.95).astype(np.uint8)
        outcomes[1::2] = (rng.random(n // 2) < 0.05).astype(np.uint8)
        separate = np.empty(n, dtype=np.int64)
        separate[0::2] = 0x1000
        separate[1::2] = 0x1010  # distinct table entries
        aliased = np.empty(n, dtype=np.int64)
        aliased[0::2] = 0x1000
        aliased[1::2] = 0x2000  # distinct pcs, same index (entries=1024)
        predictor = BimodalPredictor(entries=1024)
        clean = predictor.simulate(separate, outcomes)
        conflicted = predictor.simulate(aliased, outcomes)
        assert conflicted > clean * 3

    def test_scalar_equals_batch(self):
        rng = np.random.default_rng(3)
        outcomes = (rng.random(300) < 0.6).astype(np.uint8)
        addresses = rng.integers(0x400000, 0x410000, 300)
        predictor = BimodalPredictor(entries=256)
        batch = predictor.simulate(addresses, outcomes)
        predictor.reset()
        scalar = sum(
            0 if predictor.predict_and_update(int(pc), int(outcome)) else 1
            for pc, outcome in zip(addresses, outcomes)
        )
        assert batch == scalar

    def test_warmup_equivalence(self):
        """simulate(warmup=w) == full run minus warmup-window count."""
        rng = np.random.default_rng(4)
        outcomes = (rng.random(400) < 0.7).astype(np.uint8)
        addresses = rng.integers(0x400000, 0x404000, 400)
        predictor = BimodalPredictor(entries=128)
        total = predictor.simulate(addresses, outcomes)
        head = predictor.simulate(addresses[:100], outcomes[:100])
        windowed = predictor.simulate(addresses, outcomes, warmup=100)
        assert windowed == total - head

    def test_negative_warmup_rejected(self):
        addresses, outcomes = _stream([1, 0])
        with pytest.raises(ConfigurationError):
            BimodalPredictor().simulate(addresses, outcomes, warmup=-1)

    def test_entries_power_of_two(self):
        with pytest.raises(ConfigurationError):
            BimodalPredictor(entries=100)

    def test_storage_bits(self):
        assert BimodalPredictor(entries=1024).storage_bits() == 2048

    def test_mpki_requires_positive_instructions(self):
        addresses, outcomes = _stream([1])
        with pytest.raises(ConfigurationError):
            BimodalPredictor().mpki(addresses, outcomes, instructions=0)
