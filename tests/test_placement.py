"""Tests for code-placement optimization."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.toolchain.camino import Camino
from repro.toolchain.linker import link
from repro.toolchain.placement import (
    ConflictAvoidingPlacer,
    hot_grouping_order,
)
from repro.uarch.caches import CacheConfig
from repro.workloads.suite import get_benchmark


@pytest.fixture(scope="module")
def bench_and_trace():
    benchmark = get_benchmark("445.gobmk")
    return benchmark, benchmark.trace(4000)


class TestHotGrouping:
    def test_valid_link_input(self, bench_and_trace):
        benchmark, trace = bench_and_trace
        objects = hot_grouping_order(benchmark.spec, trace)
        layout = link(benchmark.spec, objects)  # raises if invalid
        assert len(layout.link_order) == len(benchmark.spec.procedures)

    def test_preserves_file_membership(self, bench_and_trace):
        benchmark, trace = bench_and_trace
        objects = hot_grouping_order(benchmark.spec, trace)
        original = {f.name: set(f.procedure_names) for f in benchmark.spec.files}
        for obj in objects:
            assert set(obj.procedure_names) == original[obj.name]

    def test_hot_procedures_first_within_file(self, bench_and_trace):
        benchmark, trace = bench_and_trace
        counts = np.bincount(
            trace.activation_proc, minlength=len(benchmark.spec.procedures)
        )
        index = benchmark.spec.procedure_index
        for obj in hot_grouping_order(benchmark.spec, trace):
            heats = [int(counts[index[name]]) for name in obj.procedure_names]
            assert heats == sorted(heats, reverse=True)


class TestConflictAvoidingPlacer:
    def test_score_deterministic(self, bench_and_trace):
        benchmark, trace = bench_and_trace
        placer = ConflictAvoidingPlacer()
        objects = hot_grouping_order(benchmark.spec, trace)
        assert placer.score(benchmark.spec, trace, objects) == placer.score(
            benchmark.spec, trace, objects
        )

    def test_score_varies_with_layout(self, bench_and_trace):
        benchmark, trace = bench_and_trace
        placer = ConflictAvoidingPlacer()
        camino = Camino()
        scores = {
            placer.score(benchmark.spec, trace, camino.reorder(benchmark.spec, seed))
            for seed in range(5)
        }
        assert len(scores) > 1

    def test_optimize_never_worse(self, bench_and_trace):
        benchmark, trace = bench_and_trace
        placer = ConflictAvoidingPlacer()
        result = placer.optimize(benchmark.spec, trace, iterations=15, seed=1)
        assert result.final_score <= result.initial_score
        assert result.improvement_percent >= 0.0

    def test_optimize_deterministic(self, bench_and_trace):
        benchmark, trace = bench_and_trace
        placer = ConflictAvoidingPlacer()
        a = placer.optimize(benchmark.spec, trace, iterations=10, seed=2)
        b = placer.optimize(benchmark.spec, trace, iterations=10, seed=2)
        assert a.final_score == b.final_score
        assert [o.procedure_names for o in a.object_files] == [
            o.procedure_names for o in b.object_files
        ]

    def test_optimized_layout_links(self, bench_and_trace):
        benchmark, trace = bench_and_trace
        placer = ConflictAvoidingPlacer()
        result = placer.optimize(benchmark.spec, trace, iterations=10, seed=3)
        link(benchmark.spec, list(result.object_files))

    def test_optimize_beats_average_random_layout(self, bench_and_trace):
        """The point of the exercise: searched placement beats chance."""
        benchmark, trace = bench_and_trace
        placer = ConflictAvoidingPlacer()
        camino = Camino()
        random_scores = [
            placer.score(benchmark.spec, trace, camino.reorder(benchmark.spec, seed))
            for seed in range(8)
        ]
        result = placer.optimize(benchmark.spec, trace, iterations=40, seed=4)
        assert result.final_score < np.mean(random_scores)

    def test_icache_weighted_score(self, bench_and_trace):
        benchmark, trace = bench_and_trace
        plain = ConflictAvoidingPlacer()
        with_icache = ConflictAvoidingPlacer(
            icache=CacheConfig(4096, 64, 2, name="tiny-l1i"), icache_weight=1.0
        )
        objects = hot_grouping_order(benchmark.spec, trace)
        assert with_icache.score(benchmark.spec, trace, objects) >= plain.score(
            benchmark.spec, trace, objects
        )

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ConflictAvoidingPlacer(warmup_fraction=1.0)

    def test_negative_iterations_rejected(self, bench_and_trace):
        benchmark, trace = bench_and_trace
        with pytest.raises(ConfigurationError):
            ConflictAvoidingPlacer().optimize(benchmark.spec, trace, iterations=-1)
