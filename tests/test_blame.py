"""Tests for blame analysis (Figure 6 machinery)."""

from __future__ import annotations

import pytest

from repro.core.blame import BlameAnalysis
from repro.errors import ModelError

from tests.test_model import _synthetic_observations


class TestBlame:
    def test_branch_dominates_synthetic(self):
        report = BlameAnalysis().analyze(_synthetic_observations())
        assert report.dominant_event == "mpki"
        assert report.per_event["mpki"].r_squared > 0.8
        assert report.per_event["mpki"].significant

    def test_uncorrelated_events_blamed_little(self):
        report = BlameAnalysis().analyze(_synthetic_observations())
        assert report.per_event["l2_mpki"].r_squared < 0.2

    def test_combined_at_least_best_single(self):
        report = BlameAnalysis().analyze(_synthetic_observations())
        best = max(blame.r_squared for blame in report.events)
        assert report.combined_r_squared >= best - 1e-9

    def test_sum_of_parts(self):
        report = BlameAnalysis().analyze(_synthetic_observations())
        assert report.sum_of_parts == pytest.approx(
            sum(blame.r_squared for blame in report.events)
        )

    def test_zero_variance_event_handled(self):
        obs = _synthetic_observations()
        # Force the L1D metric (constant 2000 counts) into the event list.
        report = BlameAnalysis(events=("mpki", "l1d_mpki")).analyze(obs)
        l1d = report.per_event["l1d_mpki"]
        assert l1d.r_squared == 0.0
        assert not l1d.significant
        # Combined model still fits using the remaining regressor.
        assert report.combined_r_squared > 0.8

    def test_custom_alpha(self):
        strict = BlameAnalysis(alpha=1e-12)
        report = strict.analyze(_synthetic_observations(noise=0.01))
        # Very strict alpha makes weak correlations insignificant.
        assert not report.per_event["l2_mpki"].significant

    def test_validation(self):
        with pytest.raises(ModelError):
            BlameAnalysis(events=())
        with pytest.raises(ModelError):
            BlameAnalysis(alpha=0.0)

    def test_benchmark_name_propagated(self):
        report = BlameAnalysis().analyze(_synthetic_observations(benchmark="x.bench"))
        assert report.benchmark == "x.bench"
