"""Tests for the tournament predictor and trace diagnostics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.program.analysis import profile_trace, render_profile
from repro.uarch.predictors.bimodal import BimodalPredictor
from repro.uarch.predictors.tournament import TournamentPredictor

from tests.conftest import make_tiny_spec


def _pattern_stream(pattern, repeats, pc=0x400040):
    outcomes = np.array(list(pattern) * repeats, dtype=np.uint8)
    addresses = np.full(outcomes.shape, pc, dtype=np.int64)
    return addresses, outcomes


class TestTournament:
    def test_local_component_learns_loop(self):
        """A fixed-trip loop is exactly what the 21264's local history
        exists for: near-zero misses after warm-up."""
        trip = [1] * 6 + [0]
        addresses, outcomes = _pattern_stream(trip, 100)
        tournament = TournamentPredictor().simulate(addresses, outcomes)
        bimodal = BimodalPredictor(2048).simulate(addresses, outcomes)
        assert bimodal >= 95  # one exit miss per trip
        assert tournament < bimodal / 3

    def test_learns_bias(self):
        addresses, outcomes = _pattern_stream([1], 400)
        assert TournamentPredictor().simulate(addresses, outcomes) < 5

    def test_scalar_equals_batch(self):
        rng = np.random.default_rng(0)
        outcomes = (rng.random(400) < 0.6).astype(np.uint8)
        addresses = rng.integers(0x400000, 0x408000, 400)
        batch_pred = TournamentPredictor()
        batch = batch_pred.simulate(addresses, outcomes)
        scalar_pred = TournamentPredictor()
        scalar_pred.reset()
        scalar = sum(
            0 if scalar_pred.predict_and_update(int(pc), int(o)) else 1
            for pc, o in zip(addresses, outcomes)
        )
        assert batch == scalar

    def test_deterministic(self):
        rng = np.random.default_rng(1)
        outcomes = (rng.random(300) < 0.7).astype(np.uint8)
        addresses = rng.integers(0x400000, 0x404000, 300)
        predictor = TournamentPredictor()
        assert predictor.simulate(addresses, outcomes) == predictor.simulate(
            addresses, outcomes
        )

    def test_reasonable_on_benchmark(self, camino, perlbench):
        """Tournament beats the static floor on a full benchmark.

        (Its purely history-indexed global PHT and chooser suffer on
        interleaved noisy streams, so unlike on real code it does not
        beat a large bimodal here — but it must comfortably beat
        static prediction.)"""
        from repro.uarch.predictors.static import AlwaysTakenPredictor

        trace = perlbench.trace(3000)
        exe = camino.build(perlbench.spec, trace, layout_seed=0)
        warmup = exe.trace.n_events // 4
        tournament = TournamentPredictor().simulate(
            exe.branch_address_stream(), exe.trace.outcomes, warmup=warmup
        )
        static = AlwaysTakenPredictor().simulate(
            exe.branch_address_stream(), exe.trace.outcomes, warmup=warmup
        )
        assert tournament < static * 0.9

    def test_validation(self):
        with pytest.raises(ValueError):
            TournamentPredictor(local_history_bits=0)

    def test_storage_bits(self):
        assert TournamentPredictor().storage_bits() > 0


class TestTraceProfile:
    @pytest.fixture(scope="class")
    def profile(self, tiny_spec, tiny_trace):
        return profile_trace(tiny_spec, tiny_trace)

    def test_counts(self, profile, tiny_spec, tiny_trace):
        assert profile.n_events == tiny_trace.n_events
        assert profile.total_instructions == tiny_trace.total_instructions
        assert profile.n_static_sites == tiny_spec.n_sites
        assert 0 < profile.n_executed_sites <= tiny_spec.n_sites

    def test_taken_fraction(self, profile, tiny_trace):
        assert profile.taken_fraction == pytest.approx(
            float(tiny_trace.outcomes.mean())
        )

    def test_hot_coverage_bounds(self, profile):
        assert 1 <= profile.hot_site_coverage_50 <= profile.n_executed_sites

    def test_working_sets_positive(self, profile, tiny_spec):
        assert 0 < profile.code_working_set_bytes
        assert profile.code_working_set_bytes <= 4 * tiny_spec.total_code_bytes
        assert profile.data_working_set_bytes >= 0

    def test_no_indirect_in_tiny_spec(self, profile):
        assert profile.indirect_fraction == 0.0

    def test_render(self, profile):
        text = render_profile(profile)
        assert "branch events" in text
        assert "working sets" in text

    def test_suite_benchmark_profile(self, perlbench):
        from repro.program.analysis import profile_trace as pt

        trace = perlbench.trace(3000)
        profile = pt(perlbench.spec, trace)
        # Integer-code-like characteristics.
        assert 80 < profile.branch_density_per_kinstr < 250
        assert 0.4 < profile.taken_fraction < 0.9
        # Zipf procedure weights: a minority of sites covers half the events.
        assert profile.hot_site_coverage_50 < profile.n_executed_sites / 2
