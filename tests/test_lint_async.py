"""The async lint pack: the event-loop context model and ASYNC001-004.

A hypothesis property pins the context labeling's monotonicity (adding
call edges can only grow each context's reachable set, never shrink
it), fixture tests demonstrate each rule's true positives and true
negatives — including the UNKNOWN-never-flags discipline and the
sanctioned handoffs (locks, asyncio primitives, awaited calls,
executor offload) — and the mutation checks the issue demands prove
that re-introducing ``time.sleep`` into a serving coroutine produces
ASYNC001 at the exact mutated line and that de-locking the
``StoreStats`` counters re-provokes the ASYNC003 the shipped tree
fixed.
"""

from __future__ import annotations

import ast
import contextlib
import io
import json
import re
from pathlib import Path

from hypothesis import given
from hypothesis import strategies as st

from repro.lint.asyncflow import AsyncFlowModel
from repro.lint.callgraph import CallGraph, Program
from repro.lint.cli import main as lint_main
from repro.lint.rules.base import annotate_parents

ASYNC_RULES = "ASYNC001,ASYNC002,ASYNC003,ASYNC004"
ASYNC_IDS = tuple(ASYNC_RULES.split(","))

REPO_ROOT = Path(__file__).resolve().parents[1]

#: Fixture module path — the ASYNC rules bind repro library modules
#: outside tests.
REL = "src/repro/svc/app.py"

#: The shipped modules whose loop/executor split the tier certifies.
#: Together they close the typed-attribute chains (``serve`` holds the
#: entries, ``lab`` the executor path, ``store`` the shared counters),
#: so mutation checks over this subset see the same contexts the
#: whole-tree lint does.
SHIPPED = (
    "src/repro/serve.py",
    "src/repro/store.py",
    "src/repro/harness/lab.py",
)


def run_cli(*argv):
    out, err = io.StringIO(), io.StringIO()
    with contextlib.redirect_stdout(out), contextlib.redirect_stderr(err):
        code = lint_main(list(argv))
    return code, out.getvalue(), err.getvalue()


def write_tree(tmp_path: Path, files: dict[str, str]) -> Path:
    for rel, source in files.items():
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source)
    return tmp_path


def lint_tree(tmp_path: Path, files: dict[str, str], rules: str = ASYNC_RULES):
    root = write_tree(tmp_path, files)
    return run_cli("--rules", rules, str(root))


def findings_json(
    tmp_path: Path, files: dict[str, str], rules: str = ASYNC_RULES
):
    root = write_tree(tmp_path, files)
    _, out, _ = run_cli("--rules", rules, "--json", str(root))
    return json.loads(out)


def shipped_files() -> dict[str, str]:
    return {rel: (REPO_ROOT / rel).read_text() for rel in SHIPPED}


def build_model(files: dict[str, str]) -> AsyncFlowModel:
    parsed = []
    for rel, source in sorted(files.items()):
        tree = ast.parse(source)
        annotate_parents(tree)
        parsed.append((rel, tree, source.splitlines()))
    program = Program.build(parsed)
    return AsyncFlowModel(program, CallGraph(program))


# ----------------------------------------------------------------------
# Context labeling: monotone in the call-edge set.
# ----------------------------------------------------------------------

_N_FUNCS = 6
_edge = st.tuples(
    st.integers(0, _N_FUNCS - 1), st.integers(0, _N_FUNCS - 1)
)


def _context_source(edges: frozenset[tuple[int, int]]) -> str:
    """f0 is a loop root, f1 an executor root; fi() -> fj() per edge."""
    lines = ["import asyncio", ""]
    for i in range(_N_FUNCS):
        lines.append(f"def f{i}():")
        callees = sorted({b for a, b in edges if a == i})
        lines.extend(f"    f{j}()" for j in callees)
        if not callees:
            lines.append("    return None")
    lines.append("async def main():")
    lines.append("    loop = asyncio.get_running_loop()")
    lines.append("    await loop.run_in_executor(None, f1)")
    lines.append("asyncio.run(main())")
    lines.append("asyncio.create_task(f0())")
    return "\n".join(lines) + "\n"


def _contexts(
    edges: frozenset[tuple[int, int]],
) -> dict[str, frozenset[str]]:
    source = _context_source(edges)
    model = build_model({REL: source})
    return {
        qualname: model.contexts_of(qualname)
        for qualname in model.program.functions
    }


class TestContextMonotonicity:
    @given(
        base=st.frozensets(_edge, max_size=10),
        extra=st.frozensets(_edge, max_size=5),
    )
    def test_monotone_in_call_edges(self, base, extra):
        """contexts(E) is pointwise contained in contexts(E | E')."""
        before = _contexts(base)
        after = _contexts(base | extra)
        for qualname, contexts in before.items():
            assert contexts <= after[qualname], qualname

    @given(base=st.frozensets(_edge, max_size=10))
    def test_roots_carry_their_context(self, base):
        contexts = _contexts(base)
        f0 = next(c for q, c in contexts.items() if q.endswith(".f0"))
        f1 = next(c for q, c in contexts.items() if q.endswith(".f1"))
        assert "loop" in f0
        assert "executor" in f1


class TestModelResolution:
    def test_local_instance_entry_resolves(self):
        source = (
            "import asyncio\n"
            "class Server:\n"
            "    async def run(self):\n"
            "        await asyncio.sleep(0)\n"
            "def main():\n"
            "    server = Server()\n"
            "    asyncio.run(server.run())\n"
        )
        model = build_model({REL: source})
        assert any(
            e.context == "loop" and e.qualname.endswith("Server.run")
            for e in model.entries
        )

    def test_typed_attr_chain_resolves_across_modules(self):
        files = {
            "src/repro/svc/stats.py": (
                "class Stats:\n"
                "    def bump(self):\n"
                "        self.count = 0\n"
            ),
            REL: (
                "import asyncio\n"
                "from repro.svc.stats import Stats\n"
                "class App:\n"
                "    def __init__(self):\n"
                "        self.stats = Stats()\n"
                "    async def tick(self):\n"
                "        self.stats.bump()\n"
                "def main():\n"
                "    app = App()\n"
                "    asyncio.run(app.tick())\n"
            ),
        }
        model = build_model(files)
        bumps = [q for q in model.program.functions if q.endswith("Stats.bump")]
        assert bumps and model.contexts_of(bumps[0]) == frozenset({"loop"})

    def test_unresolvable_callable_contributes_nothing(self):
        source = (
            "import asyncio\n"
            "def launch(callback):\n"
            "    asyncio.create_task(callback())\n"
            "def quiet():\n"
            "    return 1\n"
        )
        model = build_model({REL: source})
        quiet = next(q for q in model.program.functions if q.endswith(".quiet"))
        assert model.contexts_of(quiet) == frozenset()


# ----------------------------------------------------------------------
# ASYNC001 — blocking call inside a coroutine.
# ----------------------------------------------------------------------


class TestBlockingInCoroutine:
    def test_direct_time_sleep_flags(self, tmp_path):
        source = (
            "import asyncio\n"
            "import time\n"
            "async def handler():\n"
            "    time.sleep(0.1)\n"
        )
        payload = findings_json(tmp_path, {REL: source}, rules="ASYNC001")
        findings = payload["findings"]
        assert [f["rule"] for f in findings] == ["ASYNC001"]
        assert "time.sleep" in findings[0]["message"]
        assert findings[0]["line"] == 4

    def test_transitive_blocking_helper_flags(self, tmp_path):
        source = (
            "import asyncio\n"
            "import time\n"
            "def settle():\n"
            "    time.sleep(0.1)\n"
            "def helper():\n"
            "    settle()\n"
            "async def handler():\n"
            "    helper()\n"
        )
        payload = findings_json(tmp_path, {REL: source}, rules="ASYNC001")
        findings = payload["findings"]
        assert [f["rule"] for f in findings] == ["ASYNC001"]
        message = findings[0]["message"]
        assert "helper" in message and "time.sleep" in message

    def test_awaited_asyncio_sleep_is_clean(self, tmp_path):
        source = (
            "import asyncio\n"
            "async def handler():\n"
            "    await asyncio.sleep(0.1)\n"
        )
        code, out, _ = lint_tree(tmp_path, {REL: source}, rules="ASYNC001")
        assert code == 0, out

    def test_executor_offload_is_clean(self, tmp_path):
        source = (
            "import asyncio\n"
            "import time\n"
            "def settle():\n"
            "    time.sleep(0.1)\n"
            "async def handler():\n"
            "    loop = asyncio.get_running_loop()\n"
            "    return await loop.run_in_executor(None, settle)\n"
        )
        code, out, _ = lint_tree(tmp_path, {REL: source}, rules="ASYNC001")
        assert code == 0, out

    def test_blocking_call_in_deferred_lambda_is_clean(self, tmp_path):
        # Creating a closure is not calling it; the lambda body's
        # blocking call does not execute when the coroutine runs.
        source = (
            "import asyncio\n"
            "import time\n"
            "async def handler(defer):\n"
            "    defer(lambda: time.sleep(0.1))\n"
        )
        code, out, _ = lint_tree(tmp_path, {REL: source}, rules="ASYNC001")
        assert code == 0, out

    def test_shadowed_open_is_clean(self, tmp_path):
        source = (
            "import asyncio\n"
            "def open(gate):\n"
            "    return gate\n"
            "async def handler():\n"
            "    return open(1)\n"
        )
        code, out, _ = lint_tree(tmp_path, {REL: source}, rules="ASYNC001")
        assert code == 0, out

    def test_suppression_comment_works(self, tmp_path):
        # ASYNC ids are five letters; the suppression grammar accepts
        # them like the three- and four-letter packs.
        source = (
            "import asyncio\n"
            "import time\n"
            "async def handler():\n"
            "    time.sleep(0.1)  # repro: allow-ASYNC001 startup barrier, loop not yet serving\n"
        )
        payload = findings_json(tmp_path, {REL: source}, rules="ASYNC001")
        assert payload["findings"] == []
        assert payload["summary"]["suppressed"] == 1


# ----------------------------------------------------------------------
# ASYNC002 — un-awaited coroutine / dropped task handle.
# ----------------------------------------------------------------------


class TestOrphanCoroutine:
    def test_discarded_create_task_flags(self, tmp_path):
        source = (
            "import asyncio\n"
            "async def work():\n"
            "    await asyncio.sleep(0)\n"
            "async def main():\n"
            "    asyncio.create_task(work())\n"
            "    await asyncio.sleep(1)\n"
        )
        payload = findings_json(tmp_path, {REL: source}, rules="ASYNC002")
        findings = payload["findings"]
        assert [f["rule"] for f in findings] == ["ASYNC002"]
        assert "task handle" in findings[0]["message"]

    def test_bare_coroutine_call_flags(self, tmp_path):
        source = (
            "import asyncio\n"
            "async def work():\n"
            "    await asyncio.sleep(0)\n"
            "async def main():\n"
            "    work()\n"
        )
        payload = findings_json(tmp_path, {REL: source}, rules="ASYNC002")
        findings = payload["findings"]
        assert [f["rule"] for f in findings] == ["ASYNC002"]
        assert "never runs" in findings[0]["message"]

    def test_kept_handle_and_awaited_coroutine_are_clean(self, tmp_path):
        source = (
            "import asyncio\n"
            "async def work():\n"
            "    await asyncio.sleep(0)\n"
            "async def main():\n"
            "    task = asyncio.create_task(work())\n"
            "    await work()\n"
            "    await task\n"
        )
        code, out, _ = lint_tree(tmp_path, {REL: source}, rules="ASYNC002")
        assert code == 0, out

    def test_handle_appended_to_registry_is_clean(self, tmp_path):
        source = (
            "import asyncio\n"
            "async def work():\n"
            "    await asyncio.sleep(0)\n"
            "async def main(tasks):\n"
            "    tasks.append(asyncio.create_task(work()))\n"
            "    await asyncio.sleep(1)\n"
        )
        code, out, _ = lint_tree(tmp_path, {REL: source}, rules="ASYNC002")
        assert code == 0, out

    def test_discarded_sync_call_is_not_flagged(self, tmp_path):
        source = (
            "import asyncio\n"
            "def log():\n"
            "    return 1\n"
            "async def main():\n"
            "    log()\n"
        )
        code, out, _ = lint_tree(tmp_path, {REL: source}, rules="ASYNC002")
        assert code == 0, out


# ----------------------------------------------------------------------
# ASYNC003 — state shared across loop/executor without a handoff.
# ----------------------------------------------------------------------

def _shared_state(cls_body: str) -> str:
    """A class whose bump() runs executor-side and read() loop-side."""
    return (
        "import asyncio\n"
        "import threading\n"
        "class Service:\n"
        + cls_body
        + "def measure():\n"
        "    svc = Service()\n"
        "    svc.bump()\n"
        "async def main():\n"
        "    loop = asyncio.get_running_loop()\n"
        "    await loop.run_in_executor(None, measure)\n"
        "    svc = Service()\n"
        "    svc.read()\n"
        "def boot():\n"
        "    asyncio.run(main())\n"
    )


class TestAsyncSharedState:
    def test_unguarded_counter_across_contexts_flags(self, tmp_path):
        source = _shared_state(
            "    def __init__(self):\n"
            "        self.count = 0\n"
            "    def bump(self):\n"
            "        self.count += 1\n"
            "    def read(self):\n"
            "        return self.count\n"
        )
        payload = findings_json(tmp_path, {REL: source}, rules="ASYNC003")
        findings = payload["findings"]
        assert [f["rule"] for f in findings] == ["ASYNC003"]
        message = findings[0]["message"]
        assert "bump" in message and "executor" in message
        assert "loop" in message

    def test_lock_discipline_is_clean(self, tmp_path):
        source = _shared_state(
            "    def __init__(self):\n"
            "        self.count = 0\n"
            "        self._lock = threading.Lock()\n"
            "    def bump(self):\n"
            "        with self._lock:\n"
            "            self.count += 1\n"
            "    def read(self):\n"
            "        return self.count\n"
        )
        code, out, _ = lint_tree(tmp_path, {REL: source}, rules="ASYNC003")
        assert code == 0, out

    def test_asyncio_primitive_attr_is_exempt(self, tmp_path):
        source = _shared_state(
            "    def __init__(self):\n"
            "        self.queue = asyncio.Queue(maxsize=8)\n"
            "    def bump(self):\n"
            "        self.queue.put_nowait(1)\n"
            "    def read(self):\n"
            "        return self.queue.qsize()\n"
        )
        code, out, _ = lint_tree(tmp_path, {REL: source}, rules="ASYNC003")
        assert code == 0, out

    def test_same_context_on_both_sides_is_clean(self, tmp_path):
        source = (
            "import asyncio\n"
            "class Metrics:\n"
            "    def __init__(self):\n"
            "        self.count = 0\n"
            "    def bump(self):\n"
            "        self.count += 1\n"
            "    def read(self):\n"
            "        return self.count\n"
            "async def main():\n"
            "    metrics = Metrics()\n"
            "    metrics.bump()\n"
            "    return metrics.read()\n"
            "def boot():\n"
            "    asyncio.run(main())\n"
        )
        code, out, _ = lint_tree(tmp_path, {REL: source}, rules="ASYNC003")
        assert code == 0, out

    def test_no_async_contexts_is_out_of_jurisdiction(self, tmp_path):
        # Plain-thread sharing is CONC002's finding, not ASYNC003's.
        source = (
            "class Counter:\n"
            "    def __init__(self):\n"
            "        self.count = 0\n"
            "    def bump(self):\n"
            "        self.count += 1\n"
            "    def read(self):\n"
            "        return self.count\n"
        )
        code, out, _ = lint_tree(tmp_path, {REL: source}, rules="ASYNC003")
        assert code == 0, out


# ----------------------------------------------------------------------
# ASYNC004 — unbounded queue / starred gather fan-out.
# ----------------------------------------------------------------------


class TestBackpressure:
    def test_unbounded_queue_flags(self, tmp_path):
        source = (
            "import asyncio\n"
            "def build():\n"
            "    return asyncio.Queue()\n"
        )
        payload = findings_json(tmp_path, {REL: source}, rules="ASYNC004")
        findings = payload["findings"]
        assert [f["rule"] for f in findings] == ["ASYNC004"]
        assert "unbounded" in findings[0]["message"]

    def test_zero_maxsize_is_explicitly_unbounded(self, tmp_path):
        source = (
            "import asyncio\n"
            "def build():\n"
            "    return asyncio.Queue(maxsize=0)\n"
        )
        code, out, _ = lint_tree(tmp_path, {REL: source}, rules="ASYNC004")
        assert code == 1
        assert "ASYNC004" in out

    def test_bounded_queue_is_clean(self, tmp_path):
        source = (
            "import asyncio\n"
            "def build():\n"
            "    return asyncio.Queue(maxsize=32)\n"
        )
        code, out, _ = lint_tree(tmp_path, {REL: source}, rules="ASYNC004")
        assert code == 0, out

    def test_variable_maxsize_is_unknown_not_flagged(self, tmp_path):
        source = (
            "import asyncio\n"
            "def build(backlog):\n"
            "    return asyncio.Queue(maxsize=backlog)\n"
        )
        code, out, _ = lint_tree(tmp_path, {REL: source}, rules="ASYNC004")
        assert code == 0, out

    def test_starred_gather_flags(self, tmp_path):
        source = (
            "import asyncio\n"
            "async def work(i):\n"
            "    await asyncio.sleep(i)\n"
            "async def main(items):\n"
            "    await asyncio.gather(*[work(i) for i in items])\n"
        )
        payload = findings_json(tmp_path, {REL: source}, rules="ASYNC004")
        findings = payload["findings"]
        assert [f["rule"] for f in findings] == ["ASYNC004"]
        assert "gather" in findings[0]["message"]

    def test_fixed_arity_gather_is_clean(self, tmp_path):
        source = (
            "import asyncio\n"
            "async def work(i):\n"
            "    await asyncio.sleep(i)\n"
            "async def main():\n"
            "    await asyncio.gather(work(1), work(2))\n"
        )
        code, out, _ = lint_tree(tmp_path, {REL: source}, rules="ASYNC004")
        assert code == 0, out


# ----------------------------------------------------------------------
# Mutation checks over the shipped serving stack.
# ----------------------------------------------------------------------


class TestShippedServingStack:
    def test_shipped_subset_is_clean(self, tmp_path):
        payload = findings_json(tmp_path, shipped_files())
        assert payload["findings"] == []

    def test_reintroduced_sleep_flags_at_exact_line(self, tmp_path):
        files = shipped_files()
        serve = files["src/repro/serve.py"]
        needle = "            payload = body.encode()\n"
        assert needle in serve
        mutated_line = "            time.sleep(0.01)\n"
        serve = serve.replace(needle, mutated_line + needle)
        serve = serve.replace("import sys\n", "import sys\nimport time\n", 1)
        files["src/repro/serve.py"] = serve
        expected_line = (
            serve.splitlines().index(mutated_line.rstrip("\n")) + 1
        )
        payload = findings_json(tmp_path, files, rules="ASYNC001")
        findings = payload["findings"]
        assert [f["rule"] for f in findings] == ["ASYNC001"]
        finding = findings[0]
        assert finding["path"].endswith("src/repro/serve.py")
        assert finding["line"] == expected_line
        assert "_handle_client" in finding["message"]
        assert "time.sleep" in finding["message"]

    def test_delocked_store_stats_flags_async003(self, tmp_path):
        # The draft defect this PR fixed in-tree: StoreStats counters
        # mutated bare from executor threads while the loop-side
        # metrics endpoint reads them.  De-locking record_hit must
        # re-provoke the finding.
        files = shipped_files()
        store = files["src/repro/store.py"]
        locked = (
            "        with self._lock:\n"
            "            self.hits += 1\n"
            "            self.layouts_loaded += layouts\n"
        )
        unlocked = (
            "        self.hits += 1\n"
            "        self.layouts_loaded += layouts\n"
        )
        assert locked in store
        files["src/repro/store.py"] = store.replace(locked, unlocked)
        payload = findings_json(tmp_path, files, rules="ASYNC003")
        findings = payload["findings"]
        assert findings, "de-locked StoreStats must flag ASYNC003"
        assert {f["rule"] for f in findings} == {"ASYNC003"}
        assert all(
            f["path"].endswith("src/repro/store.py") for f in findings
        )
        message = findings[0]["message"]
        assert "record_hit" in message
        assert "executor" in message and "loop" in message


# ----------------------------------------------------------------------
# CLI surface.
# ----------------------------------------------------------------------


class TestCliSurface:
    def test_list_rules_shows_async_tier(self):
        code, out, _ = run_cli("--list-rules")
        assert code == 0
        for rule_id in ASYNC_IDS:
            assert re.search(
                rf"^{rule_id} \[(error|warning)\] \(async\) ", out, re.M
            ), rule_id

    def test_unknown_rule_catalogue_includes_async_ids(self):
        code, _, err = run_cli("--rule", "NOPE001", ".")
        assert code != 0
        for rule_id in ASYNC_IDS:
            assert rule_id in err

    def test_single_rule_selection(self, tmp_path):
        source = (
            "import asyncio\n"
            "import time\n"
            "async def handler():\n"
            "    time.sleep(0.1)\n"
        )
        root = write_tree(tmp_path, {REL: source})
        code, out, _ = run_cli("--rule", "ASYNC001", "--json", str(root))
        assert code == 1
        payload = json.loads(out)
        assert payload["rule_set"] == ["ASYNC001"]
        assert [f["rule"] for f in payload["findings"]] == ["ASYNC001"]
