"""Tests for the predictor evaluator (Figures 7-8 machinery)."""

from __future__ import annotations

import pytest

from repro.core.evaluate import PredictorEvaluator, mean_confidence_interval
from repro.core.interferometer import Interferometer
from repro.errors import ConfigurationError
from repro.uarch.predictors.bimodal import BimodalPredictor
from repro.uarch.predictors.hybrid import HybridPredictor
from repro.workloads.suite import get_benchmark

import numpy as np


@pytest.fixture(scope="module")
def setup(machine):
    interferometer = Interferometer(machine, trace_events=2500)
    benchmark = get_benchmark("445.gobmk")
    observations = interferometer.observe(benchmark, n_layouts=6)
    evaluator = PredictorEvaluator(
        interferometer,
        [
            BimodalPredictor(256, name="tiny-bimodal"),
            HybridPredictor(2048, 4096, 8, 2048, name="xeon-twin"),
        ],
    )
    return interferometer, benchmark, observations, evaluator


class TestEvaluation:
    def test_outcomes_per_predictor(self, setup):
        _, benchmark, observations, evaluator = setup
        evaluation = evaluator.evaluate(benchmark, observations)
        assert set(evaluation.by_predictor) == {"tiny-bimodal", "xeon-twin"}

    def test_twin_matches_real_mpki(self, setup):
        """A predictor identical to the machine's should reproduce the
        measured MPKI (modulo counter jitter)."""
        _, benchmark, observations, evaluator = setup
        evaluation = evaluator.evaluate(benchmark, observations)
        twin = evaluation.by_predictor["xeon-twin"]
        assert twin.mean_mpki == pytest.approx(evaluation.real_mean_mpki, rel=0.02)

    def test_worse_predictor_higher_cpi(self, setup):
        _, benchmark, observations, evaluator = setup
        evaluation = evaluator.evaluate(benchmark, observations)
        tiny = evaluation.by_predictor["tiny-bimodal"]
        twin = evaluation.by_predictor["xeon-twin"]
        assert tiny.mean_mpki > twin.mean_mpki
        assert tiny.predicted_cpi.mean > twin.predicted_cpi.mean

    def test_improvement_sign(self, setup):
        _, benchmark, observations, evaluator = setup
        evaluation = evaluator.evaluate(benchmark, observations)
        assert evaluation.predicted_improvement_percent("tiny-bimodal") < 0.0

    def test_real_ci_contains_mean(self, setup):
        _, benchmark, observations, evaluator = setup
        evaluation = evaluator.evaluate(benchmark, observations)
        assert evaluation.real_cpi_confidence.contains(evaluation.real_mean_cpi)

    def test_empty_observations_rejected(self, setup):
        _, benchmark, _, evaluator = setup
        from repro.core.observations import ObservationSet

        with pytest.raises(ConfigurationError):
            evaluator.evaluate(benchmark, ObservationSet(benchmark=benchmark.name))


class TestMeanCi:
    def test_contains_mean(self):
        values = np.array([1.0, 2.0, 3.0, 4.0])
        interval = mean_confidence_interval(values)
        assert interval.contains(2.5)

    def test_narrows_with_samples(self):
        rng = np.random.default_rng(0)
        small = mean_confidence_interval(rng.normal(0, 1, 10))
        large = mean_confidence_interval(rng.normal(0, 1, 1000))
        assert large.half_width < small.half_width

    def test_single_value_degenerate(self):
        interval = mean_confidence_interval(np.array([5.0]))
        assert interval.low == interval.high == 5.0
