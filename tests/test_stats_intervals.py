"""Tests for confidence and prediction intervals."""

from __future__ import annotations

import numpy as np
import pytest
from scipy import stats as scipy_stats

from repro.errors import ModelError
from repro.stats.intervals import (
    Interval,
    confidence_interval_mean_response,
    interval_band,
    multiple_confidence_interval,
    multiple_prediction_interval,
    prediction_interval_new_response,
)
from repro.stats.regression import fit_multiple, fit_simple


def _fit(noise=0.5, n=60, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.uniform(0, 10, n)
    y = 2.0 * x + 1.0 + rng.normal(0, noise, n)
    return fit_simple(x, y), x, y


class TestIntervalType:
    def test_half_width(self):
        interval = Interval(center=5.0, low=4.0, high=6.0, confidence=0.95)
        assert interval.half_width == pytest.approx(1.0)

    def test_contains(self):
        interval = Interval(center=5.0, low=4.0, high=6.0, confidence=0.95)
        assert interval.contains(4.0)
        assert interval.contains(6.0)
        assert not interval.contains(6.01)

    def test_percent_half_width(self):
        interval = Interval(center=10.0, low=9.0, high=11.0, confidence=0.95)
        assert interval.percent_half_width == pytest.approx(10.0)

    def test_percent_half_width_zero_center(self):
        interval = Interval(center=0.0, low=-1.0, high=1.0, confidence=0.95)
        assert interval.percent_half_width == 0.0


class TestSimpleIntervals:
    def test_pi_contains_ci(self):
        fit, x, _ = _fit()
        for x0 in (0.0, 5.0, 12.0):
            ci = confidence_interval_mean_response(fit, x0)
            pi = prediction_interval_new_response(fit, x0)
            assert pi.low < ci.low
            assert pi.high > ci.high
            assert ci.center == pytest.approx(pi.center)

    def test_interval_centered_on_prediction(self):
        fit, _, _ = _fit()
        ci = confidence_interval_mean_response(fit, 3.0)
        assert ci.center == pytest.approx(fit.predict(3.0))
        assert (ci.low + ci.high) / 2 == pytest.approx(ci.center)

    def test_ci_narrowest_at_x_mean(self):
        fit, _, _ = _fit()
        widths = [
            confidence_interval_mean_response(fit, x0).half_width
            for x0 in (fit.x_mean, fit.x_mean + 3, fit.x_mean - 5)
        ]
        assert widths[0] < widths[1]
        assert widths[0] < widths[2]

    def test_higher_confidence_wider(self):
        fit, _, _ = _fit()
        narrow = confidence_interval_mean_response(fit, 2.0, confidence=0.90)
        wide = confidence_interval_mean_response(fit, 2.0, confidence=0.99)
        assert wide.half_width > narrow.half_width

    def test_matches_scipy_slope_stderr(self):
        fit, x, y = _fit(noise=1.0, seed=2)
        result = scipy_stats.linregress(x, y)
        assert fit.slope_stderr == pytest.approx(result.stderr, rel=1e-9)

    def test_bad_confidence_rejected(self):
        fit, _, _ = _fit()
        with pytest.raises(ModelError):
            confidence_interval_mean_response(fit, 1.0, confidence=1.5)

    def test_band_consistent_with_pointwise(self):
        fit, _, _ = _fit()
        grid = [0.0, 2.0, 4.0]
        line, ci_low, ci_high, pi_low, pi_high = interval_band(fit, grid)
        for i, x0 in enumerate(grid):
            ci = confidence_interval_mean_response(fit, x0)
            pi = prediction_interval_new_response(fit, x0)
            assert line[i] == pytest.approx(fit.predict(x0))
            assert ci_low[i] == pytest.approx(ci.low)
            assert ci_high[i] == pytest.approx(ci.high)
            assert pi_low[i] == pytest.approx(pi.low)
            assert pi_high[i] == pytest.approx(pi.high)

    def test_ci_coverage_monte_carlo(self):
        """~95% of refits should cover the true mean response."""
        true = 2.0 * 4.0 + 1.0
        rng = np.random.default_rng(42)
        covered = 0
        trials = 300
        for _ in range(trials):
            x = rng.uniform(0, 10, 30)
            y = 2.0 * x + 1.0 + rng.normal(0, 1.0, 30)
            ci = confidence_interval_mean_response(fit_simple(x, y), 4.0)
            if ci.contains(true):
                covered += 1
        assert 0.90 <= covered / trials <= 0.99

    def test_pi_coverage_monte_carlo(self):
        """~95% of new observations should land inside the PI."""
        rng = np.random.default_rng(43)
        covered = 0
        trials = 300
        for _ in range(trials):
            x = rng.uniform(0, 10, 30)
            y = 2.0 * x + 1.0 + rng.normal(0, 1.0, 30)
            pi = prediction_interval_new_response(fit_simple(x, y), 4.0)
            new_obs = 2.0 * 4.0 + 1.0 + rng.normal(0, 1.0)
            if pi.contains(new_obs):
                covered += 1
        assert 0.90 <= covered / trials <= 0.99


class TestMultipleIntervals:
    def _multi_fit(self):
        rng = np.random.default_rng(3)
        x1 = rng.uniform(0, 5, 50)
        x2 = rng.uniform(0, 5, 50)
        y = 1.5 * x1 + 0.5 * x2 + 2.0 + rng.normal(0, 0.3, 50)
        return fit_multiple([x1, x2], y)

    def test_pi_contains_ci(self):
        fit = self._multi_fit()
        ci = multiple_confidence_interval(fit, [1.0, 2.0])
        pi = multiple_prediction_interval(fit, [1.0, 2.0])
        assert pi.low < ci.low < ci.high < pi.high

    def test_centered_on_prediction(self):
        fit = self._multi_fit()
        ci = multiple_confidence_interval(fit, [1.0, 2.0])
        assert ci.center == pytest.approx(fit.predict([1.0, 2.0]))

    def test_wrong_dimension_rejected(self):
        fit = self._multi_fit()
        with pytest.raises(ModelError):
            multiple_confidence_interval(fit, [1.0])

    def test_single_regressor_matches_simple(self):
        rng = np.random.default_rng(4)
        x = rng.uniform(0, 10, 40)
        y = 2.0 * x + 1.0 + rng.normal(0, 0.5, 40)
        simple = fit_simple(x, y)
        multi = fit_multiple([x], y)
        simple_ci = confidence_interval_mean_response(simple, 3.0)
        multi_ci = multiple_confidence_interval(multi, [3.0])
        assert multi_ci.low == pytest.approx(simple_ci.low, rel=1e-9)
        assert multi_ci.high == pytest.approx(simple_ci.high, rel=1e-9)
