"""Tests for the static program structure."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, WorkloadError
from repro.program.behavior import BiasedBehavior
from repro.program.structure import (
    BranchSite,
    DataRefSpec,
    HeapObjectSpec,
    ProcedureSpec,
    ProgramSpec,
    SourceFile,
)

from tests.conftest import make_tiny_spec


def _site(offset=32, gap=5, refs=()):
    return BranchSite(
        name=f"s{offset}",
        offset=offset,
        behavior=BiasedBehavior(0.8),
        instr_gap=gap,
        data_refs=refs,
    )


class TestDataRefSpec:
    def test_valid_stride(self):
        ref = DataRefSpec(object_name="o", mode="stride", stride=64, span=1024)
        assert ref.stride == 64

    def test_unknown_mode(self):
        with pytest.raises(ConfigurationError):
            DataRefSpec(object_name="o", mode="weird")

    def test_zero_stride_rejected(self):
        with pytest.raises(ConfigurationError):
            DataRefSpec(object_name="o", mode="stride", stride=0)

    def test_negative_span(self):
        with pytest.raises(ConfigurationError):
            DataRefSpec(object_name="o", span=0)

    def test_start_offset_outside_span(self):
        with pytest.raises(ConfigurationError):
            DataRefSpec(object_name="o", span=128, start_offset=128)


class TestBranchSite:
    def test_fetch_blocks_cover_gap(self):
        site = _site(offset=200, gap=20)  # span = 80 bytes
        blocks = site.fetch_block_offsets()
        assert blocks == (64, 128, 192)

    def test_fetch_blocks_single(self):
        site = _site(offset=10, gap=1)
        assert site.fetch_block_offsets() == (0,)

    def test_fetch_blocks_never_negative(self):
        site = _site(offset=4, gap=50)
        assert min(site.fetch_block_offsets()) >= 0

    def test_negative_offset_rejected(self):
        with pytest.raises(ConfigurationError):
            _site(offset=-1)

    def test_bad_exec_prob(self):
        with pytest.raises(ConfigurationError):
            BranchSite(name="x", offset=0, behavior=BiasedBehavior(0.5), exec_prob=0.0)


class TestProcedureSpec:
    def test_size_includes_tail(self):
        proc = ProcedureSpec(name="p", sites=(_site(32), _site(96)), tail_bytes=40)
        assert proc.size_bytes == 96 + 40

    def test_unordered_sites_rejected(self):
        with pytest.raises(ConfigurationError):
            ProcedureSpec(name="p", sites=(_site(96), _site(32)))

    def test_duplicate_offsets_rejected(self):
        with pytest.raises(ConfigurationError):
            ProcedureSpec(name="p", sites=(_site(32), _site(32)))

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            ProcedureSpec(name="p", sites=())

    def test_nonpositive_weight_rejected(self):
        with pytest.raises(ConfigurationError):
            ProcedureSpec(name="p", sites=(_site(),), weight=0.0)


class TestSourceFile:
    def test_duplicate_procedure_rejected(self):
        with pytest.raises(ConfigurationError):
            SourceFile(name="f", procedure_names=("a", "a"))

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            SourceFile(name="f", procedure_names=())


class TestProgramSpec:
    def test_tiny_spec_valid(self, tiny_spec):
        assert tiny_spec.n_sites == 18
        assert len(tiny_spec.procedures) == 6

    def test_site_table_order(self, tiny_spec):
        table = tiny_spec.site_table()
        assert len(table) == tiny_spec.n_sites
        # procedure indices non-decreasing, offsets increasing within proc
        for (p1, s1), (p2, s2) in zip(table, table[1:]):
            assert p2 >= p1
            if p1 == p2:
                assert s2.offset > s1.offset

    def test_procedure_index(self, tiny_spec):
        index = tiny_spec.procedure_index
        assert index["p0"] == 0
        assert index["p5"] == 5

    def test_object_index(self, tiny_spec):
        assert tiny_spec.object_index["table"] == 0

    def test_lookup_missing_procedure(self, tiny_spec):
        with pytest.raises(WorkloadError):
            tiny_spec.procedure("nope")

    def test_total_code_bytes(self, tiny_spec):
        assert tiny_spec.total_code_bytes == sum(
            proc.size_bytes for proc in tiny_spec.procedures
        )

    def test_files_must_cover_procedures(self):
        with pytest.raises(ConfigurationError):
            ProgramSpec(
                name="bad",
                procedures=(ProcedureSpec(name="p", sites=(_site(),)),),
                files=(SourceFile(name="f", procedure_names=("other",)),),
            )

    def test_unknown_data_object_rejected(self):
        ref = DataRefSpec(object_name="ghost", span=64)
        with pytest.raises(ConfigurationError):
            ProgramSpec(
                name="bad",
                procedures=(ProcedureSpec(name="p", sites=(_site(refs=(ref,)),)),),
                files=(SourceFile(name="f", procedure_names=("p",)),),
            )

    def test_span_exceeding_object_rejected(self):
        ref = DataRefSpec(object_name="small", span=4096)
        with pytest.raises(ConfigurationError):
            ProgramSpec(
                name="bad",
                procedures=(ProcedureSpec(name="p", sites=(_site(refs=(ref,)),)),),
                files=(SourceFile(name="f", procedure_names=("p",)),),
                heap_objects=(HeapObjectSpec(name="small", size_bytes=1024),),
            )

    def test_bad_intrinsic_cpi(self):
        with pytest.raises(ConfigurationError):
            make_tiny_spec()  # fine
            ProgramSpec(
                name="bad",
                procedures=(ProcedureSpec(name="p", sites=(_site(),)),),
                files=(SourceFile(name="f", procedure_names=("p",)),),
                intrinsic_cpi=0.0,
            )


class TestDigest:
    def test_digest_stable(self):
        assert make_tiny_spec().digest == make_tiny_spec().digest

    def test_digest_changes_with_structure(self):
        a = make_tiny_spec(n_procs=6)
        b = make_tiny_spec(n_procs=5)
        assert a.digest != b.digest

    def test_digest_changes_with_heap(self):
        a = make_tiny_spec(with_heap=True)
        b = make_tiny_spec(with_heap=False)
        assert a.digest != b.digest
