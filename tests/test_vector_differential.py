"""Differential tests: the vector engine against the scalar oracle.

Every simulated structure offers two engines with one contract: the
numpy batch kernels (``engine="vector"``) must produce *bit-identical*
counts — and, where the structure keeps tables, bit-identical post-run
state — to the per-event scalar loops (``engine="scalar"``).  These
tests enforce that contract over hypothesis-chosen traces, including
the warmup edge cases (0, the full trace, past the end), empty
streams, all-not-taken traces, and indirect traces with no indirect
branches at all.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.machine.config import XeonE5440Config
from repro.machine.core_model import XeonCoreModel
from repro.program.tracegen import generate_trace
from repro.toolchain.camino import Camino
from repro.uarch.btb import BranchTargetBuffer
from repro.uarch.caches import CacheConfig, CacheHierarchy, SetAssociativeCache
from repro.uarch.predictors.agree import AgreePredictor
from repro.uarch.predictors.bimodal import BimodalPredictor
from repro.uarch.predictors.bimode import BiModePredictor
from repro.uarch.predictors.gas import GAsPredictor
from repro.uarch.predictors.gshare import GsharePredictor
from repro.uarch.predictors.gskew import GskewPredictor
from repro.uarch.predictors.hybrid import HybridPredictor
from repro.uarch.predictors.indirect import IttageLitePredictor, LastTargetPredictor
from repro.uarch.predictors.pas import PAsPredictor
from repro.uarch.predictors.perceptron import PerceptronPredictor
from repro.uarch.predictors.perfect import PerfectPredictor
from repro.uarch.predictors.static import (
    AlwaysNotTakenPredictor,
    AlwaysTakenPredictor,
)
from repro.uarch.predictors.tage import TagePredictor
from repro.uarch.predictors.tournament import TournamentPredictor

from tests.conftest import make_tiny_spec

# Small geometries on purpose: heavy aliasing exercises the carried
# state of every kernel much harder than the production sizes do.
PREDICTOR_FACTORIES = {
    "bimodal": lambda: BimodalPredictor(entries=128),
    "gshare": lambda: GsharePredictor(entries=256, history_bits=7),
    "gas": lambda: GAsPredictor(entries=256, history_bits=5),
    "hybrid": lambda: HybridPredictor(128, 512, 7, 128),
    "hybrid-uneven-chooser": lambda: HybridPredictor(128, 512, 7, 256),
    "agree": lambda: AgreePredictor(entries=256, history_bits=6, bias_entries=64),
    "pas": lambda: PAsPredictor(bht_entries=64, pht_entries=1024, history_bits=6),
    "tournament": lambda: TournamentPredictor(64, 6, 256, 7),
    "gskew": lambda: GskewPredictor(entries_per_bank=128, history_bits=6),
    "bimode": lambda: BiModePredictor(entries=256, history_bits=6, choice_entries=64),
    "perceptron": lambda: PerceptronPredictor(entries=64, history_bits=10),
    "tage": lambda: TagePredictor(table_bits=6, bimodal_bits=8),
    "always-taken": AlwaysTakenPredictor,
    "always-not-taken": AlwaysNotTakenPredictor,
    "perfect": PerfectPredictor,
}

CACHE_CONFIGS = {
    "direct-mapped": CacheConfig(1024, 32, 1, name="direct"),
    "two-way": CacheConfig(4096, 64, 2, name="two-way"),
    "eight-way": CacheConfig(32768, 64, 8, name="l1-like"),
}

_WARMUP_KINDS = ("zero", "third", "all", "past-end")


def _comparable_state(predictor) -> dict | None:
    """Predictor state when it is made of plain lists/ints, else None."""
    state = vars(predictor)
    if all(isinstance(v, (list, int, str, bool)) for v in state.values()):
        return state
    return None


def _make_trace(seed: int, n: int) -> tuple[np.ndarray, np.ndarray]:
    """A branch trace with clustered pcs and occasional >32-bit addresses."""
    rng = np.random.default_rng(seed)
    sites = rng.integers(0, 1 << 22, size=max(1, n // 8), dtype=np.int64) * 4
    if seed % 3 == 0:
        sites += np.int64(1) << 33
    addresses = sites[rng.integers(0, sites.size, size=n)]
    outcomes = (rng.random(n) < rng.random()).astype(np.int64)
    return addresses, outcomes


def _warmup(kind: str, n: int) -> int:
    return {"zero": 0, "third": n // 3, "all": n, "past-end": n + 7}[kind]


@pytest.mark.parametrize("name", sorted(PREDICTOR_FACTORIES))
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n=st.integers(min_value=0, max_value=400),
    warmup_kind=st.sampled_from(_WARMUP_KINDS),
)
@settings(max_examples=12, deadline=None)
def test_predictor_engines_bit_identical(name, seed, n, warmup_kind):
    """Vector and scalar engines agree on counts and table state."""
    addresses, outcomes = _make_trace(seed, n)
    warmup = _warmup(warmup_kind, n)
    scalar = PREDICTOR_FACTORIES[name]()
    vectored = PREDICTOR_FACTORIES[name]()
    count_s = scalar.simulate(addresses, outcomes, warmup=warmup, engine="scalar")
    count_v = vectored.simulate(addresses, outcomes, warmup=warmup, engine="vector")
    assert count_s == count_v
    state = _comparable_state(scalar)
    if state is not None:
        assert state == _comparable_state(vectored)


@pytest.mark.parametrize("name", sorted(CACHE_CONFIGS))
@given(seed=st.integers(min_value=0, max_value=10_000), n=st.integers(min_value=0, max_value=600))
@settings(max_examples=15, deadline=None)
def test_cache_engines_bit_identical(name, seed, n):
    """Vector and scalar cache simulation agree per access and on state."""
    rng = np.random.default_rng(seed)
    sequential = np.arange(n, dtype=np.int64) * 4 + int(rng.integers(0, 1 << 28))
    random = rng.integers(0, 1 << 34, size=n, dtype=np.int64)
    addresses = np.where(rng.random(n) < 0.5, sequential, random)
    scalar = SetAssociativeCache(CACHE_CONFIGS[name])
    vectored = SetAssociativeCache(CACHE_CONFIGS[name])
    mask_s = scalar.simulate_mask(addresses, engine="scalar")
    mask_v = vectored.simulate_mask(addresses, engine="vector")
    assert np.array_equal(mask_s, mask_v)
    assert scalar._sets == vectored._sets


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n=st.integers(min_value=0, max_value=500),
    warmup_kind=st.sampled_from(_WARMUP_KINDS),
)
@settings(max_examples=20, deadline=None)
def test_btb_engines_bit_identical(seed, n, warmup_kind):
    """Vector and scalar BTB simulation agree on misses and sets."""
    addresses, outcomes = _make_trace(seed, n)
    warmup = _warmup(warmup_kind, n)
    scalar = BranchTargetBuffer(entries=64, associativity=2)
    vectored = BranchTargetBuffer(entries=64, associativity=2)
    count_s = scalar.simulate(addresses, outcomes, warmup=warmup, engine="scalar")
    count_v = vectored.simulate(addresses, outcomes, warmup=warmup, engine="vector")
    assert count_s == count_v
    assert scalar._sets == vectored._sets


@pytest.mark.parametrize(
    "factory",
    [
        lambda: LastTargetPredictor(entries=64),
        lambda: IttageLitePredictor(entries=128, base_entries=32),
    ],
    ids=["last-target", "ittage-lite"],
)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n=st.integers(min_value=0, max_value=400),
    warmup_kind=st.sampled_from(_WARMUP_KINDS),
)
@settings(max_examples=12, deadline=None)
def test_indirect_engines_bit_identical(factory, seed, n, warmup_kind):
    """Vector and scalar target predictors agree, incl. no-target traces."""
    addresses, _ = _make_trace(seed, n)
    rng = np.random.default_rng(seed + 1)
    targets = np.where(
        rng.random(n) < 0.4, rng.integers(0, 30, size=n), -1
    ).astype(np.int64)
    if seed % 5 == 0:
        targets[:] = -1  # a purely conditional trace never counts
    warmup = _warmup(warmup_kind, n)
    scalar, vectored = factory(), factory()
    count_s = scalar.simulate(addresses, targets, warmup=warmup, engine="scalar")
    count_v = vectored.simulate(addresses, targets, warmup=warmup, engine="vector")
    assert count_s == count_v
    assert vars(scalar) == vars(vectored)
    if (targets >= 0).sum() == 0:
        assert count_v == 0


@given(seed=st.integers(min_value=0, max_value=5_000))
@settings(max_examples=8, deadline=None)
def test_hierarchy_engines_bit_identical(seed):
    """The two-level hierarchy produces identical counts on both engines."""
    rng = np.random.default_rng(seed)
    n_i, n_d = int(rng.integers(1, 800)), int(rng.integers(1, 400))
    ifetch = rng.integers(0, 1 << 26, size=n_i, dtype=np.int64)
    data = rng.integers(0, 1 << 26, size=n_d, dtype=np.int64)
    i_ev = np.sort(rng.integers(0, 200, size=n_i)).astype(np.int64)
    d_ev = np.sort(rng.integers(0, 200, size=n_d)).astype(np.int64)
    configs = (
        CacheConfig(4096, 64, 2, name="i"),
        CacheConfig(4096, 64, 2, name="d"),
        CacheConfig(16384, 64, 4, name="l2"),
    )
    warmup = int(rng.integers(0, 200))
    counts = [
        CacheHierarchy(*configs).simulate(
            ifetch, i_ev, data, d_ev, warmup_event=warmup, engine=engine
        )
        for engine in ("scalar", "vector")
    ]
    assert counts[0] == counts[1]


class TestEdgeCases:
    """Deterministic corners the hypothesis sweeps may not always hit."""

    @pytest.mark.parametrize("name", sorted(PREDICTOR_FACTORIES))
    @pytest.mark.parametrize("engine", ["scalar", "vector"])
    def test_empty_stream(self, name, engine):
        empty = np.zeros(0, dtype=np.int64)
        predictor = PREDICTOR_FACTORIES[name]()
        assert predictor.simulate(empty, empty, warmup=0, engine=engine) == 0
        assert predictor.simulate(empty, empty, warmup=5, engine=engine) == 0

    @pytest.mark.parametrize("name", sorted(PREDICTOR_FACTORIES))
    def test_all_not_taken(self, name):
        addresses = (np.arange(200, dtype=np.int64) % 37) * 4
        outcomes = np.zeros(200, dtype=np.int64)
        for warmup in (0, 100, 200, 250):
            counts = {
                engine: PREDICTOR_FACTORIES[name]().simulate(
                    addresses, outcomes, warmup=warmup, engine=engine
                )
                for engine in ("scalar", "vector")
            }
            assert counts["scalar"] == counts["vector"]
        # Counting past the end of the trace counts nothing.
        assert (
            PREDICTOR_FACTORIES[name]().simulate(
                addresses, outcomes, warmup=200, engine="vector"
            )
            == 0
        )

    @pytest.mark.parametrize("name", sorted(PREDICTOR_FACTORIES))
    def test_negative_warmup_raises(self, name):
        empty = np.zeros(0, dtype=np.int64)
        with pytest.raises(ConfigurationError):
            PREDICTOR_FACTORIES[name]().simulate(empty, empty, warmup=-1)

    def test_btb_negative_warmup_raises(self):
        empty = np.zeros(0, dtype=np.int64)
        with pytest.raises(ConfigurationError):
            BranchTargetBuffer().simulate(empty, empty, warmup=-1)

    @pytest.mark.parametrize(
        "factory", [LastTargetPredictor, IttageLitePredictor]
    )
    def test_indirect_negative_warmup_raises(self, factory):
        empty = np.zeros(0, dtype=np.int64)
        with pytest.raises(ConfigurationError):
            factory().simulate(empty, empty, warmup=-1)

    def test_unknown_engine_rejected_everywhere(self):
        empty = np.zeros(0, dtype=np.int64)
        with pytest.raises(ConfigurationError):
            BimodalPredictor().simulate(empty, empty, engine="simd")
        with pytest.raises(ConfigurationError):
            BranchTargetBuffer().simulate(empty, empty, engine="simd")
        with pytest.raises(ConfigurationError):
            SetAssociativeCache(CACHE_CONFIGS["two-way"]).simulate_mask(
                empty, engine="simd"
            )
        with pytest.raises(ConfigurationError):
            LastTargetPredictor().simulate(empty, empty, engine="simd")

    def test_btb_empty_and_all_not_taken(self):
        empty = np.zeros(0, dtype=np.int64)
        addresses = np.arange(50, dtype=np.int64) * 4
        never = np.zeros(50, dtype=np.int64)
        for engine in ("scalar", "vector"):
            btb = BranchTargetBuffer(entries=16, associativity=2)
            assert btb.simulate(empty, empty, engine=engine) == 0
            assert btb.simulate(addresses, never, engine=engine) == 0


def test_core_model_engines_bit_identical():
    """End to end: the core model's counts match across engines."""
    spec = make_tiny_spec()
    trace = generate_trace(spec, seed=9, n_events=1500)
    executable = Camino().build(spec, trace, layout_seed=3)
    config = XeonE5440Config()
    results = [
        XeonCoreModel(config).execute(executable, engine=engine)
        for engine in ("scalar", "vector")
    ]
    assert results[0] == results[1]
