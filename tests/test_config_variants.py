"""Tests for non-default machine and MASE configurations."""

from __future__ import annotations

import pytest

from repro.machine.config import NoiseParameters, TimingParameters, XeonE5440Config
from repro.machine.pmc import measure_executable
from repro.machine.system import XeonE5440
from repro.mase.simulator import MaseConfig, MaseSimulator
from repro.uarch.caches import CacheConfig
from repro.uarch.predictors.bimodal import BimodalPredictor
from repro.workloads.suite import get_benchmark


@pytest.fixture(scope="module")
def exe(camino, tiny_spec, tiny_trace):
    return camino.build(tiny_spec, tiny_trace, layout_seed=2)


class TestMachineVariants:
    def test_noiseless_machine_is_deterministic_across_runs(self, exe):
        config = XeonE5440Config(
            noise=NoiseParameters(
                relative_sigma=0.0,
                spike_probability=0.0,
                core_offset_sigma=0.0,
                counter_jitter=0.0,
            )
        )
        machine = XeonE5440(config=config, seed=1)
        from repro.machine.counters import Counter

        a = machine.run_once(exe, run_key="a")[Counter.CYCLES]
        b = machine.run_once(exe, run_key="b")[Counter.CYCLES]
        assert a == b

    def test_zero_penalties_floor_cpi(self, exe):
        config = XeonE5440Config(
            timing=TimingParameters(
                mispredict_penalty=0.0,
                btb_penalty=0.0,
                l1i_penalty=0.0,
                l1d_penalty=0.0,
                l2_penalty=0.0,
                coupling_mpki_l1d=0.0,
            ),
            noise=NoiseParameters(
                relative_sigma=0.0, spike_probability=0.0,
                core_offset_sigma=0.0, counter_jitter=0.0,
            ),
        )
        machine = XeonE5440(config=config, seed=1)
        measurement = measure_executable(machine, exe)
        assert measurement.cpi == pytest.approx(exe.spec.intrinsic_cpi, rel=0.01)

    def test_bigger_predictor_fewer_mispredicts(self, camino):
        benchmark = get_benchmark("445.gobmk")
        trace = benchmark.trace(3000)
        exe = camino.build(benchmark.spec, trace, layout_seed=0)
        small_machine = XeonE5440(
            config=XeonE5440Config(
                bimodal_entries=256, global_entries=512,
                history_bits=6, chooser_entries=256,
            ),
            seed=1,
        )
        big_machine = XeonE5440(
            config=XeonE5440Config(
                bimodal_entries=8192, global_entries=16384,
                history_bits=8, chooser_entries=8192,
            ),
            seed=1,
        )
        small = small_machine._oracle_counts(exe).mispredicts
        big = big_machine._oracle_counts(exe).mispredicts
        assert big < small

    def test_tiny_cache_more_misses(self, exe):
        small = XeonE5440(
            config=XeonE5440Config(
                l1d=CacheConfig(1024, 64, 2, name="L1D"),
            ),
            seed=1,
        )
        default = XeonE5440(seed=1)
        assert (
            small._oracle_counts(exe).l1d_misses
            >= default._oracle_counts(exe).l1d_misses
        )


class TestMaseVariants:
    def test_prepare_is_predictor_independent(self):
        simulator = MaseSimulator()
        benchmark = get_benchmark("401.bzip2")
        prepared = simulator.prepare(benchmark, trace_events=1500)
        first = simulator.run(prepared, BimodalPredictor(256))
        second = simulator.run(prepared, BimodalPredictor(4096))
        # Memory cycles are shared; branch behaviour differs.
        assert first.instructions == second.instructions
        assert first.mispredicts != second.mispredicts

    def test_custom_penalties_scale_cycles(self):
        benchmark = get_benchmark("401.bzip2")
        cheap = MaseSimulator(MaseConfig(mispredict_penalty=1.0))
        dear = MaseSimulator(MaseConfig(mispredict_penalty=50.0))
        cheap_result = cheap.run(
            cheap.prepare(benchmark, trace_events=1500), BimodalPredictor(256)
        )
        dear_result = dear.run(
            dear.prepare(benchmark, trace_events=1500), BimodalPredictor(256)
        )
        assert dear_result.cycles > cheap_result.cycles
        assert dear_result.mispredicts == cheap_result.mispredicts

    def test_warmup_fraction_shrinks_window(self):
        benchmark = get_benchmark("401.bzip2")
        wide = MaseSimulator(MaseConfig(warmup_fraction=0.0))
        narrow = MaseSimulator(MaseConfig(warmup_fraction=0.5))
        wide_prep = wide.prepare(benchmark, trace_events=1500)
        narrow_prep = narrow.prepare(benchmark, trace_events=1500)
        assert narrow_prep.instructions < wide_prep.instructions
        assert narrow_prep.branches < wide_prep.branches
