"""Tests for the linker model."""

from __future__ import annotations

import pytest

from repro.errors import LinkError
from repro.toolchain.linker import DEFAULT_TEXT_BASE, ObjectFile, link

from tests.conftest import make_tiny_spec


@pytest.fixture(scope="module")
def spec():
    return make_tiny_spec()


def _objects(spec, order=None):
    files = list(spec.files)
    if order:
        files = [files[i] for i in order]
    return [ObjectFile(name=f.name, procedure_names=f.procedure_names) for f in files]


class TestLink:
    def test_all_procedures_placed(self, spec):
        layout = link(spec, _objects(spec))
        assert len(layout.link_order) == len(spec.procedures)
        assert set(layout.link_order) == {p.name for p in spec.procedures}

    def test_bases_aligned(self, spec):
        layout = link(spec, _objects(spec), alignment=16)
        assert all(base % 16 == 0 for base in layout.proc_base)

    def test_custom_alignment(self, spec):
        layout = link(spec, _objects(spec), alignment=64)
        assert all(base % 64 == 0 for base in layout.proc_base)

    def test_no_overlap(self, spec):
        layout = link(spec, _objects(spec))
        spans = sorted(
            (int(layout.proc_base[i]), int(layout.proc_base[i]) + proc.size_bytes)
            for i, proc in enumerate(spec.procedures)
        )
        for (lo_a, hi_a), (lo_b, _) in zip(spans, spans[1:]):
            assert hi_a <= lo_b

    def test_text_base_respected(self, spec):
        layout = link(spec, _objects(spec), text_base=0x1000)
        assert min(layout.proc_base) >= 0x1000
        assert layout.text_base == 0x1000

    def test_default_text_base(self, spec):
        layout = link(spec, _objects(spec))
        assert min(layout.proc_base) >= DEFAULT_TEXT_BASE

    def test_encounter_order_is_address_order(self, spec):
        layout = link(spec, _objects(spec))
        addresses = [layout.base_of(spec, name) for name in layout.link_order]
        assert addresses == sorted(addresses)

    def test_file_order_changes_layout(self, spec):
        a = link(spec, _objects(spec))
        b = link(spec, _objects(spec, order=[1, 0]))
        assert list(a.proc_base) != list(b.proc_base)

    def test_deterministic(self, spec):
        a = link(spec, _objects(spec))
        b = link(spec, _objects(spec))
        assert (a.proc_base == b.proc_base).all()

    def test_text_size_covers_code(self, spec):
        layout = link(spec, _objects(spec))
        assert layout.text_size >= spec.total_code_bytes


class TestLinkErrors:
    def test_missing_symbol(self, spec):
        objs = _objects(spec)[:1]
        with pytest.raises(LinkError, match="undefined"):
            link(spec, objs)

    def test_duplicate_symbol(self, spec):
        objs = _objects(spec)
        objs.append(objs[0])
        with pytest.raises(LinkError, match="duplicate"):
            link(spec, objs)

    def test_unknown_symbol(self, spec):
        objs = _objects(spec) + [ObjectFile(name="x.o", procedure_names=("ghost",))]
        with pytest.raises(LinkError, match="unknown"):
            link(spec, objs)

    def test_bad_alignment(self, spec):
        with pytest.raises(LinkError):
            link(spec, _objects(spec), alignment=12)

    def test_empty_object_file(self):
        with pytest.raises(LinkError):
            ObjectFile(name="e.o", procedure_names=())
