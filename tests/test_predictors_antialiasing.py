"""Tests for the anti-aliasing predictors: Agree, Bi-Mode, gskew.

These designs exist to neutralize exactly the mechanism program
interferometry measures, so the key property test is: under an
opposite-bias aliasing workload, they lose far less accuracy than a
plain gshare of the same budget.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.uarch.predictors.agree import AgreePredictor
from repro.uarch.predictors.bimode import BiModePredictor
from repro.uarch.predictors.gshare import GsharePredictor
from repro.uarch.predictors.gskew import GskewPredictor


def _opposite_bias_stream(n=8000, seed=0, pc_a=0x1000, separation=1 << 12):
    """An aliasing-hostile workload.

    Two branches with opposite strong biases collide in any 1024-entry
    direction table (their pc difference is 4096 bytes) but land in
    distinct entries of the larger pc-indexed bias/choice tables; a
    50/50 random branch interleaves at random phases so global history
    carries entropy and cannot separate the colliding pair.
    """
    rng = np.random.default_rng(seed)
    pc_b = pc_a + separation
    pc_r = 0x2040
    addresses = np.empty(n, dtype=np.int64)
    outcomes = np.empty(n, dtype=np.uint8)
    which = rng.choice(3, size=n, p=[0.25, 0.25, 0.5])
    rand = rng.random(n)
    for i, w in enumerate(which):
        if w == 0:
            addresses[i] = pc_a
            outcomes[i] = rand[i] < 0.97
        elif w == 1:
            addresses[i] = pc_b
            outcomes[i] = rand[i] < 0.03
        else:
            addresses[i] = pc_r
            outcomes[i] = rand[i] < 0.5
    return addresses, outcomes


def _scalar_equals_batch(factory, n=500, seed=1):
    rng = np.random.default_rng(seed)
    outcomes = (rng.random(n) < 0.6).astype(np.uint8)
    addresses = rng.integers(0x400000, 0x408000, n)
    batch_predictor = factory()
    batch = batch_predictor.simulate(addresses, outcomes)
    scalar_predictor = factory()
    scalar_predictor.reset()
    scalar = sum(
        0 if scalar_predictor.predict_and_update(int(pc), int(outcome)) else 1
        for pc, outcome in zip(addresses, outcomes)
    )
    assert batch == scalar


class TestAgree:
    def test_learns_biases(self):
        addresses, outcomes = _opposite_bias_stream()
        misses = AgreePredictor(entries=1024, history_bits=6).simulate(
            addresses, outcomes
        )
        # The 50/50 branch contributes an irreducible ~25% of events;
        # the biased pair must stay near its ~3% noise floor on top.
        assert misses < 0.35 * len(outcomes)

    def test_beats_gshare_under_aliasing(self):
        addresses, outcomes = _opposite_bias_stream(seed=2)
        agree = AgreePredictor(entries=1024, history_bits=6).simulate(
            addresses, outcomes
        )
        gshare = GsharePredictor(entries=1024, history_bits=6).simulate(
            addresses, outcomes
        )
        assert agree < gshare

    def test_scalar_equals_batch(self):
        _scalar_equals_batch(lambda: AgreePredictor(entries=512, history_bits=5))

    def test_bias_set_once(self):
        predictor = AgreePredictor(entries=64, history_bits=4, bias_entries=64)
        predictor.predict_and_update(0x1000, 1)
        assert predictor._bias[(0x1000 >> 2) & 63] == 1
        predictor.predict_and_update(0x1000, 0)
        assert predictor._bias[(0x1000 >> 2) & 63] == 1  # unchanged

    def test_validation(self):
        with pytest.raises(ValueError):
            AgreePredictor(history_bits=0)


class TestBiMode:
    def test_separates_opposite_biases(self):
        addresses, outcomes = _opposite_bias_stream(seed=3)
        misses = BiModePredictor(entries=1024, history_bits=6).simulate(
            addresses, outcomes
        )
        assert misses < 0.35 * len(outcomes)

    def test_beats_gshare_under_aliasing(self):
        addresses, outcomes = _opposite_bias_stream(seed=4)
        bimode = BiModePredictor(entries=1024, history_bits=6).simulate(
            addresses, outcomes
        )
        gshare = GsharePredictor(entries=1024, history_bits=6).simulate(
            addresses, outcomes
        )
        assert bimode < gshare

    def test_scalar_equals_batch(self):
        _scalar_equals_batch(lambda: BiModePredictor(entries=512, history_bits=5))

    def test_learns_uniform_bias(self):
        outcomes = np.ones(500, dtype=np.uint8)
        addresses = np.full(500, 0x2000, dtype=np.int64)
        assert BiModePredictor(entries=256, history_bits=4).simulate(
            addresses, outcomes
        ) <= 2


class TestGskew:
    def test_majority_masks_single_bank_conflict(self):
        addresses, outcomes = _opposite_bias_stream(seed=5)
        gskew = GskewPredictor(entries_per_bank=1024, history_bits=6).simulate(
            addresses, outcomes
        )
        gshare = GsharePredictor(entries=1024, history_bits=6).simulate(
            addresses, outcomes
        )
        assert gskew < gshare

    def test_scalar_equals_batch(self):
        _scalar_equals_batch(lambda: GskewPredictor(entries_per_bank=512, history_bits=5))

    def test_learns_bias(self):
        outcomes = np.ones(500, dtype=np.uint8)
        addresses = np.full(500, 0x2000, dtype=np.int64)
        assert GskewPredictor(entries_per_bank=256, history_bits=4).simulate(
            addresses, outcomes
        ) == 0

    def test_storage(self):
        predictor = GskewPredictor(entries_per_bank=1024, history_bits=8)
        assert predictor.storage_bits() == 3 * 2048 + 8


class TestLayoutSensitivityOrdering:
    def test_antialiasing_designs_reduce_layout_variance(self, camino):
        """The paper's §2.2 point, predictor-side: organizations designed
        against aliasing show less layout-to-layout MPKI variance than
        the plain hybrid on the same executables."""
        from repro.workloads.suite import get_benchmark
        from repro.uarch.predictors.hybrid import HybridPredictor

        benchmark = get_benchmark("445.gobmk")
        trace = benchmark.trace(6000)
        warmup = trace.n_events // 4

        def spread(predictor_factory):
            mpkis = []
            for seed in range(8):
                exe = camino.build(benchmark.spec, trace, layout_seed=seed)
                predictor = predictor_factory()
                misses = predictor.simulate(
                    exe.branch_address_stream(), trace.outcomes, warmup=warmup
                )
                mpkis.append(misses)
            return float(np.std(mpkis))

        hybrid_spread = spread(lambda: HybridPredictor(2048, 4096, 8, 2048))
        gskew_spread = spread(
            lambda: GskewPredictor(entries_per_bank=2048, history_bits=8)
        )
        assert gskew_spread < hybrid_spread * 1.5  # at worst comparable
