"""Tests for indirect-branch targets: behaviour, predictors, machine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.machine.counters import Counter
from repro.machine.pmc import measure_executable
from repro.machine.system import XeonE5440
from repro.program.behavior import BiasedBehavior, IndirectTargetBehavior
from repro.program.structure import BranchSite, ProcedureSpec, ProgramSpec, SourceFile
from repro.program.tracegen import generate_trace
from repro.toolchain.camino import Camino
from repro.uarch.predictors.indirect import IttageLitePredictor, LastTargetPredictor


def make_dispatch_spec(n_targets=6, repeat_prob=0.2, history_weight=0.9):
    """A tiny interpreter-like program: one hot indirect dispatch site
    plus a few conditional branches."""
    dispatch = BranchSite(
        name="dispatch",
        offset=48,
        behavior=BiasedBehavior(1.0),  # indirect branches are always taken
        instr_gap=6,
        target_behavior=IndirectTargetBehavior(
            n_targets=n_targets,
            repeat_prob=repeat_prob,
            history_weight=history_weight,
        ),
    )
    handlers = tuple(
        BranchSite(
            name=f"handler{i}",
            offset=48 + 64 * (i + 1),
            behavior=BiasedBehavior(0.9),
            instr_gap=5,
        )
        for i in range(3)
    )
    proc = ProcedureSpec(name="interp_loop", sites=(dispatch,) + handlers)
    helper = ProcedureSpec(
        name="helper",
        sites=(BranchSite(name="h0", offset=32, behavior=BiasedBehavior(0.7)),),
    )
    return ProgramSpec(
        name="tiny-interp",
        procedures=(proc, helper),
        files=(SourceFile(name="interp.o", procedure_names=("interp_loop", "helper")),),
    )


@pytest.fixture(scope="module")
def dispatch_trace():
    spec = make_dispatch_spec()
    return spec, generate_trace(spec, seed=11, n_events=3000)


class TestTargetBehavior:
    def test_targets_in_range(self, dispatch_trace):
        _, trace = dispatch_trace
        indirect = trace.targets[trace.targets >= 0]
        assert indirect.size > 0
        assert indirect.min() >= 0
        assert indirect.max() < 6

    def test_conditional_events_marked(self, dispatch_trace):
        _, trace = dispatch_trace
        assert (trace.targets == -1).any()

    def test_targets_layout_invariant(self, dispatch_trace):
        spec, trace = dispatch_trace
        again = generate_trace(spec, seed=11, n_events=3000)
        assert (trace.targets == again.targets).all()

    def test_repeat_prob_controls_burstiness(self):
        bursty_spec = make_dispatch_spec(repeat_prob=0.9)
        flat_spec = make_dispatch_spec(repeat_prob=0.0)
        bursty = generate_trace(bursty_spec, seed=1, n_events=2000).targets
        flat = generate_trace(flat_spec, seed=1, n_events=2000).targets
        def repeat_rate(targets):
            t = targets[targets >= 0]
            return float((t[1:] == t[:-1]).mean())
        assert repeat_rate(bursty) > repeat_rate(flat) + 0.3

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            IndirectTargetBehavior(n_targets=1)
        with pytest.raises(ConfigurationError):
            IndirectTargetBehavior(n_targets=4, repeat_prob=1.0)


class TestTargetPredictors:
    def _bound(self, dispatch_trace, layout_seed=0):
        spec, trace = dispatch_trace
        exe = Camino().build(spec, trace, layout_seed=layout_seed)
        return exe.branch_address_stream(), exe.trace.targets

    def test_last_target_learns_repeats(self):
        addresses = np.full(100, 0x1000, dtype=np.int64)
        targets = np.full(100, 3, dtype=np.int32)
        assert LastTargetPredictor(entries=64).simulate(addresses, targets) == 1

    def test_last_target_skips_conditionals(self):
        addresses = np.full(10, 0x1000, dtype=np.int64)
        targets = np.full(10, -1, dtype=np.int32)
        assert LastTargetPredictor(entries=64).simulate(addresses, targets) == 0

    def test_ittage_learns_history_patterns(self, dispatch_trace):
        """On a history-correlated dispatch site, ITTAGE-lite beats the
        last-target BTB policy (the point of ITTAGE)."""
        addresses, targets = self._bound(dispatch_trace)
        last = LastTargetPredictor(entries=512).simulate(addresses, targets)
        ittage = IttageLitePredictor(entries=2048).simulate(addresses, targets)
        assert ittage < last * 0.85

    def test_warmup_reduces_counts(self, dispatch_trace):
        addresses, targets = self._bound(dispatch_trace)
        predictor = LastTargetPredictor(entries=512)
        full = predictor.simulate(addresses, targets)
        windowed = predictor.simulate(addresses, targets, warmup=len(targets) // 2)
        assert windowed <= full

    def test_scalar_interface(self):
        predictor = LastTargetPredictor(entries=64)
        assert predictor.predict_and_update(0x1000, 2) is False
        assert predictor.predict_and_update(0x1000, 2) is True

    def test_negative_warmup(self, dispatch_trace):
        addresses, targets = self._bound(dispatch_trace)
        with pytest.raises(ConfigurationError):
            LastTargetPredictor().simulate(addresses, targets, warmup=-1)


class TestMachineIntegration:
    def test_indirect_counter_measured(self, dispatch_trace):
        spec, trace = dispatch_trace
        machine = XeonE5440(seed=3)
        exe = Camino().build(spec, trace, layout_seed=0)
        measurement = measure_executable(
            machine, exe, events=[Counter.INDIRECT_MISPREDICTS, Counter.BRANCHES]
        )
        assert measurement[Counter.INDIRECT_MISPREDICTS] > 0

    def test_suite_benchmarks_have_no_indirect_events(self, machine, camino,
                                                      tiny_spec, tiny_trace):
        """The calibrated suite is untouched by the indirect extension."""
        exe = camino.build(tiny_spec, tiny_trace, layout_seed=0)
        counts = machine._oracle_counts(exe)
        assert counts.indirect_mispredicts == 0

    def test_indirect_misses_cost_cycles(self, dispatch_trace):
        """Replacing the dispatch site's targets with constant ones
        lowers CPI (fewer indirect mispredictions, same instructions)."""
        spec, trace = dispatch_trace
        machine = XeonE5440(seed=3)
        exe = Camino().build(spec, trace, layout_seed=0)
        noisy = measure_executable(machine, exe, events=[Counter.BRANCHES])

        constant_spec = make_dispatch_spec(repeat_prob=0.98)
        constant_trace = generate_trace(constant_spec, seed=11, n_events=3000)
        constant_exe = Camino().build(constant_spec, constant_trace, layout_seed=0)
        steady = measure_executable(machine, constant_exe, events=[Counter.BRANCHES])
        assert steady.cpi < noisy.cpi
