"""The campaign server: coalescing, backpressure, drain, bit-identity.

The serving contract is the paper's purity argument carried across a
socket: every observation is a pure function of (config, machine seed,
benchmark, layout index), so a served campaign must be byte-identical
to a direct :func:`~repro.persistence.dump_campaign` export of the
same slice — including when a fault plan makes the measurement path
retry.  The scheduling tests pin the loop-side invariants: identical
in-flight requests coalesce onto one measurement, a full admission
queue rejects instead of buffering, and a drain finishes in-flight
work before the workers stop.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import subprocess
import sys
import threading
from pathlib import Path

import pytest

from repro import faults
from repro.core.observations import ObservationSet
from repro.errors import BackpressureError, ConfigurationError
from repro.faults import FaultPlan
from repro.harness.lab import Laboratory
from repro.persistence import dump_campaign
from repro.serve import (
    CampaignRequest,
    CampaignServer,
    CampaignService,
    percentile,
)
from repro.store import CampaignKey

from .conftest import TEST_SCALE

BENCH = "429.mcf"
REPO_ROOT = Path(__file__).resolve().parents[1]


def direct_payload(lab: Laboratory, benchmark: str, n_layouts: int) -> str:
    """The reference export the server must reproduce bit-for-bit."""
    full = lab.observations(benchmark)
    key = CampaignKey.for_interferometer(lab.interferometer, benchmark)
    subset = ObservationSet(benchmark=benchmark)
    subset.extend(full.observations[:n_layouts])
    return dump_campaign(subset, provenance=key.provenance)


async def with_service(lab: Laboratory, body, **kwargs):
    """Run *body(service)* between start() and drain()."""
    service = CampaignService(lab, **kwargs)
    service.start()
    try:
        return await body(service)
    finally:
        await service.drain()


class TestPercentile:
    def test_empty_is_zero(self):
        assert percentile([], 0.5) == 0.0

    def test_nearest_rank(self):
        samples = [1.0, 2.0, 3.0, 4.0]
        assert percentile(samples, 0.5) == 2.0
        assert percentile(samples, 0.99) == 4.0
        assert percentile(samples, 0.0) == 1.0

    def test_single_sample(self):
        assert percentile([7.0], 0.5) == 7.0
        assert percentile([7.0], 0.99) == 7.0


class TestCampaignRequest:
    def test_digest_distinguishes_heap_and_layouts(self):
        a = CampaignRequest(benchmark=BENCH, n_layouts=4)
        b = CampaignRequest(benchmark=BENCH, n_layouts=4, heap=True)
        c = CampaignRequest(benchmark=BENCH, n_layouts=5)
        assert len({a.digest, b.digest, c.digest}) == 3


class TestServiceValidation:
    def test_nonpositive_workers_rejected(self, lab):
        with pytest.raises(ConfigurationError):
            CampaignService(lab, max_workers=0)

    def test_nonpositive_backlog_rejected(self, lab):
        with pytest.raises(ConfigurationError):
            CampaignService(lab, backlog=0)

    def test_layouts_out_of_range_rejected(self, lab):
        service = CampaignService(lab)
        with pytest.raises(ConfigurationError):
            service.validate(
                CampaignRequest(benchmark=BENCH, n_layouts=TEST_SCALE.n_layouts + 1)
            )
        with pytest.raises(ConfigurationError):
            service.validate(CampaignRequest(benchmark=BENCH, n_layouts=0))

    def test_lookup_before_start_rejected(self, lab):
        service = CampaignService(lab)

        async def scenario():
            await service.lookup(CampaignRequest(benchmark=BENCH, n_layouts=2))

        with pytest.raises(ConfigurationError):
            asyncio.run(scenario())


class TestServedBitIdentity:
    def test_served_equals_direct_export(self, lab):
        reference = direct_payload(lab, BENCH, 4)

        async def body(service):
            return await service.lookup(
                CampaignRequest(benchmark=BENCH, n_layouts=4)
            )

        served = asyncio.run(with_service(lab, body))
        assert served == reference

    def test_served_equals_direct_export_under_flaky_faults(self, tmp_path):
        # The supervised measurement path retries transient read faults
        # and reproduces the exact bits a fault-free run would have
        # produced; serving through the executor must preserve that.
        clean_lab = Laboratory(scale=TEST_SCALE, machine_seed=7)
        reference = direct_payload(clean_lab, BENCH, 3)

        async def body(service):
            return await service.lookup(
                CampaignRequest(benchmark=BENCH, n_layouts=3)
            )

        flaky_lab = Laboratory(
            scale=TEST_SCALE, machine_seed=7, cache_dir=tmp_path / "store"
        )
        with faults.injected(FaultPlan.from_spec("flaky")):
            served = asyncio.run(with_service(flaky_lab, body))
        assert served == reference

    def test_store_backed_service_hits_across_processes(self, tmp_path):
        # A second service over the same store (a fresh lab, as after a
        # restart) serves the identical bytes without re-measuring.
        request = CampaignRequest(benchmark=BENCH, n_layouts=3)

        async def body(service):
            return await service.lookup(request)

        first_lab = Laboratory(
            scale=TEST_SCALE, machine_seed=7, cache_dir=tmp_path / "store"
        )
        first = asyncio.run(with_service(first_lab, body))
        assert first_lab.store.stats.misses == 1

        second_lab = Laboratory(
            scale=TEST_SCALE, machine_seed=7, cache_dir=tmp_path / "store"
        )
        second = asyncio.run(with_service(second_lab, body))
        assert second == first
        assert second_lab.store.stats.hits == 1
        assert second_lab.store.stats.layouts_measured == 0


class TestCoalescing:
    def test_concurrent_duplicates_share_one_measurement(self, tmp_path):
        lab = Laboratory(
            scale=TEST_SCALE, machine_seed=11, cache_dir=tmp_path / "store"
        )
        request = CampaignRequest(benchmark=BENCH, n_layouts=3)

        async def body(service):
            payloads = await asyncio.gather(
                service.lookup(request),
                service.lookup(request),
                service.lookup(request),
                service.lookup(request),
            )
            return payloads, service.metrics.snapshot()

        payloads, view = asyncio.run(with_service(lab, body))
        assert len(set(payloads)) == 1
        # The first request registers in-flight before yielding, so
        # the other three coalesce deterministically.
        assert view["coalesced"] == 3
        assert view["served"] == 4
        # One measurement, not four: the store saw a single miss.
        assert lab.store.stats.misses == 1

    def test_distinct_requests_do_not_coalesce(self, lab):
        async def body(service):
            await asyncio.gather(
                service.lookup(CampaignRequest(benchmark=BENCH, n_layouts=2)),
                service.lookup(CampaignRequest(benchmark=BENCH, n_layouts=3)),
            )
            return service.metrics.snapshot()

        view = asyncio.run(with_service(lab, body))
        assert view["coalesced"] == 0


class TestBackpressure:
    def test_full_queue_rejects_with_503_error(self, lab, monkeypatch):
        release = threading.Event()

        def slow_measure(request):
            release.wait(timeout=30)
            return "{}"

        async def scenario():
            service = CampaignService(lab, max_workers=1, backlog=1)
            monkeypatch.setattr(service, "_measure_payload", slow_measure)
            service.start()
            try:
                first = asyncio.ensure_future(
                    service.lookup(CampaignRequest(benchmark=BENCH, n_layouts=2))
                )
                # Let the single worker dequeue the first job and park
                # in the executor, so the queue is empty again...
                await asyncio.sleep(0.05)
                second = asyncio.ensure_future(
                    service.lookup(CampaignRequest(benchmark=BENCH, n_layouts=3))
                )
                await asyncio.sleep(0.05)
                # ...now the backlog slot is occupied: a third distinct
                # request must be rejected, not buffered.
                with pytest.raises(BackpressureError):
                    await service.lookup(
                        CampaignRequest(benchmark=BENCH, n_layouts=4)
                    )
                view = service.metrics.snapshot()
                assert view["rejected"] == 1
                saturation = service.saturation()
                assert saturation["busy"] == 1
                assert saturation["queue_depth"] == 1
                release.set()
                await asyncio.gather(first, second)
            finally:
                release.set()
                await service.drain()

        asyncio.run(scenario())

    def test_draining_service_rejects_new_requests(self, lab):
        async def scenario():
            service = CampaignService(lab)
            service.start()
            await service.drain()
            with pytest.raises(BackpressureError):
                await service.lookup(
                    CampaignRequest(benchmark=BENCH, n_layouts=2)
                )

        asyncio.run(scenario())


async def http_get(port: int, target: str) -> tuple[str, dict, bytes]:
    """Minimal HTTP/1.1 GET against the local server."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(
        f"GET {target} HTTP/1.1\r\nHost: localhost\r\n\r\n".encode()
    )
    await writer.drain()
    raw = await reader.read()
    writer.close()
    await writer.wait_closed()
    head, _, body = raw.partition(b"\r\n\r\n")
    lines = head.decode().split("\r\n")
    status = lines[0].split(" ", 1)[1]
    headers = dict(
        line.split(": ", 1) for line in lines[1:] if ": " in line
    )
    return status, headers, body


class TestHttpServer:
    def run_with_server(self, lab, body, **service_kwargs):
        async def scenario():
            service = CampaignService(lab, **service_kwargs)
            server = CampaignServer(service, port=0)
            await server.start()
            try:
                return await body(server)
            finally:
                await server.drain()

        return asyncio.run(scenario())

    def test_healthz(self, lab):
        async def body(server):
            return await http_get(server.port, "/healthz")

        status, headers, payload = self.run_with_server(lab, body)
        assert status == "200 OK"
        assert payload == b"ok\n"
        assert headers["Content-Length"] == str(len(payload))

    def test_campaign_payload_is_bit_identical(self, lab):
        reference = direct_payload(lab, BENCH, 4)

        async def body(server):
            return await http_get(
                server.port, f"/campaign?benchmark={BENCH}&layouts=4"
            )

        status, headers, payload = self.run_with_server(lab, body)
        assert status == "200 OK"
        assert headers["Content-Type"] == "application/json"
        assert payload.decode() == reference

    def test_concurrent_duplicate_queries_coalesce(self, lab):
        target = f"/campaign?benchmark={BENCH}&layouts=5"

        async def body(server):
            results = await asyncio.gather(
                *(http_get(server.port, target) for _ in range(4))
            )
            metrics = await http_get(server.port, "/metrics")
            return results, metrics

        results, (status, _, metrics_body) = self.run_with_server(lab, body)
        payloads = {payload for _, _, payload in results}
        assert len(payloads) == 1
        assert status == "200 OK"
        view = json.loads(metrics_body)
        assert view["coalesced"] >= 1

    def test_metrics_shape(self, tmp_path):
        lab = Laboratory(
            scale=TEST_SCALE, machine_seed=7, cache_dir=tmp_path / "store"
        )

        async def body(server):
            await http_get(
                server.port, f"/campaign?benchmark={BENCH}&layouts=2"
            )
            return await http_get(server.port, "/metrics")

        status, _, payload = self.run_with_server(lab, body)
        assert status == "200 OK"
        view = json.loads(payload)
        assert view["requests"] == 1
        assert view["served"] == 1
        assert set(view["latency_ms"]) == {"p50", "p99", "samples"}
        assert view["pool"]["workers"] == 2
        assert view["pool"]["queue_capacity"] == 32
        # The store-backed lab exposes its hit/miss counters.
        assert view["store"]["misses"] == 1
        # Deterministic key order: the document is diffable.
        assert payload.decode() == json.dumps(
            view, indent=1, sort_keys=True
        ) + "\n"

    def test_error_routes(self, lab):
        async def body(server):
            return (
                await http_get(server.port, "/nope"),
                await http_get(server.port, "/campaign"),
                await http_get(server.port, "/campaign?benchmark=900.none"),
                await http_get(
                    server.port, f"/campaign?benchmark={BENCH}&layouts=zero"
                ),
                await http_get(
                    server.port, f"/campaign?benchmark={BENCH}&layouts=999"
                ),
            )

        missing, no_bench, unknown, bad_int, oob = self.run_with_server(
            lab, body
        )
        assert missing[0].startswith("404")
        assert no_bench[0].startswith("400")
        assert unknown[0].startswith("404")
        assert bad_int[0].startswith("400")
        assert oob[0].startswith("400")

    def test_non_get_and_malformed_request_line(self, lab):
        async def body(server):
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            writer.write(b"POST /healthz HTTP/1.1\r\n\r\n")
            await writer.drain()
            post_raw = await reader.read()
            writer.close()
            await writer.wait_closed()

            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            writer.write(b"garbage\r\n\r\n")
            await writer.drain()
            bad_raw = await reader.read()
            writer.close()
            await writer.wait_closed()
            return post_raw, bad_raw

        post_raw, bad_raw = self.run_with_server(lab, body)
        assert b"405" in post_raw.split(b"\r\n", 1)[0]
        assert b"400" in bad_raw.split(b"\r\n", 1)[0]

    def test_drain_request_stops_the_server(self, lab):
        from repro.core.supervise import ShutdownHandler

        async def scenario():
            shutdown = ShutdownHandler()
            service = CampaignService(lab)
            server = CampaignServer(
                service, port=0, shutdown=shutdown, poll_seconds=0.01
            )
            runner = asyncio.ensure_future(server.serve_until_shutdown())
            while server.port is None:
                await asyncio.sleep(0.01)
            status, _, _ = await http_get(server.port, "/healthz")
            assert status == "200 OK"
            shutdown.request()
            await asyncio.wait_for(runner, timeout=10)
            with pytest.raises(OSError):
                await asyncio.open_connection("127.0.0.1", server.port)

        asyncio.run(scenario())


class TestServeProcessDrain:
    def test_sigterm_drains_and_exits_zero(self, tmp_path):
        env = dict(os.environ)
        env["REPRO_SCALE"] = "ci"
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.serve",
                "--port",
                "0",
                "--cache-dir",
                str(tmp_path / "store"),
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            env=env,
            text=True,
        )
        try:
            banner = proc.stdout.readline()
            assert "serving campaigns on http://" in banner
            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 0, out
        assert "drained:" in out
