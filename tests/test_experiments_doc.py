"""Tests for the EXPERIMENTS.md generator and CLI experiment runs."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.harness.experiments_doc import PAPER_TABLE1, build_document


class TestExperimentsDoc:
    @pytest.fixture(scope="class")
    def document(self, lab):
        return build_document(lab)

    def test_all_sections_present(self, document):
        for heading in (
            "## Figure 1", "## Figure 2", "## Figure 3", "## Figure 4",
            "## Figure 5", "## Figure 6", "## Figure 7", "## Figure 8",
            "## Table 1", "significance screen", "headline predictions",
            "## Known deviations",
        ):
            assert heading.lower() in document.lower(), heading

    def test_paper_reference_values_present(self, document):
        # Spot-check that the paper's numbers appear as comparisons.
        assert "0.02799" in document   # perlbench slope
        assert "1.387" in document     # suite real CPI
        assert "6.306" in document     # real predictor MPKI
        assert "20 of 23" in document

    def test_measured_values_rendered(self, document):
        assert "measured" in document
        assert "HOLDS" in document

    def test_paper_table1_reference_complete(self):
        assert len(PAPER_TABLE1) == 20
        assert PAPER_TABLE1["400.perlbench"][0] == pytest.approx(0.028)


class TestCliScale:
    def test_scale_flag_runs_experiment(self, capsys):
        assert main(["--scale", "ci", "headline"]) == 0
        out = capsys.readouterr().out
        assert "scale: ci" in out
        assert "perfect prediction" in out
