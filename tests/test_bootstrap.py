"""Tests for bootstrap intervals."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ModelError
from repro.stats.bootstrap import bootstrap_interval, bootstrap_regression_prediction
from repro.stats.intervals import confidence_interval_mean_response
from repro.stats.regression import fit_simple


class TestBootstrapInterval:
    def test_contains_point_estimate(self):
        rng = np.random.default_rng(0)
        values = rng.normal(10.0, 1.0, 80)
        interval = bootstrap_interval(values, seed=1)
        assert interval.low <= interval.center <= interval.high

    def test_covers_true_mean(self):
        rng = np.random.default_rng(1)
        values = rng.normal(5.0, 1.0, 200)
        interval = bootstrap_interval(values, seed=2)
        assert interval.contains(5.0)

    def test_matches_parametric_width_on_normal_data(self):
        """On normal data, bootstrap and t-based mean CIs should agree."""
        rng = np.random.default_rng(2)
        values = rng.normal(0.0, 1.0, 150)
        boot = bootstrap_interval(values, n_resamples=4000, seed=3)
        # Parametric CI of the mean.
        stderr = values.std(ddof=1) / np.sqrt(values.size)
        assert boot.half_width == pytest.approx(1.96 * stderr, rel=0.2)

    def test_custom_statistic(self):
        values = np.array([1.0, 2.0, 3.0, 100.0] * 20)
        interval = bootstrap_interval(
            values, statistic=lambda arr: float(np.median(arr)), seed=4
        )
        assert interval.center == pytest.approx(np.median(values))
        # Median interval ignores the outlier mass far better than mean.
        assert interval.high <= 100.0

    def test_deterministic_per_seed(self):
        rng = np.random.default_rng(3)
        values = rng.normal(0, 1, 50)
        a = bootstrap_interval(values, seed=7)
        b = bootstrap_interval(values, seed=7)
        assert (a.low, a.high) == (b.low, b.high)

    def test_validation(self):
        with pytest.raises(ModelError):
            bootstrap_interval([1.0])
        with pytest.raises(ModelError):
            bootstrap_interval([1.0, 2.0], n_resamples=10)
        with pytest.raises(ModelError):
            bootstrap_interval([1.0, 2.0], confidence=1.0)


class TestBootstrapRegression:
    def _data(self, n=80, noise=0.5, seed=0):
        rng = np.random.default_rng(seed)
        x = rng.uniform(0, 10, n)
        y = 2.0 * x + 1.0 + rng.normal(0, noise, n)
        return x, y

    def test_contains_fit_prediction(self):
        x, y = self._data()
        interval = bootstrap_regression_prediction(x, y, x0=5.0, seed=1)
        assert interval.low <= interval.center <= interval.high
        assert interval.center == pytest.approx(fit_simple(x, y).predict(5.0))

    def test_agrees_with_parametric_ci(self):
        x, y = self._data(n=120, noise=1.0, seed=2)
        boot = bootstrap_regression_prediction(x, y, x0=4.0, n_resamples=3000, seed=3)
        parametric = confidence_interval_mean_response(fit_simple(x, y), 4.0)
        assert boot.half_width == pytest.approx(parametric.half_width, rel=0.35)

    def test_extrapolation_widens(self):
        x, y = self._data(seed=4)
        near = bootstrap_regression_prediction(x, y, x0=float(np.mean(x)), seed=5)
        far = bootstrap_regression_prediction(x, y, x0=-5.0, seed=5)
        assert far.half_width > near.half_width

    def test_validation(self):
        with pytest.raises(ModelError):
            bootstrap_regression_prediction([1.0, 2.0], [1.0, 2.0], x0=0.0)
