"""Tests for the deterministic random streams."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rng import RandomStream, derive_seed


class TestDeterminism:
    def test_same_seed_same_sequence(self):
        a = RandomStream(123)
        b = RandomStream(123)
        assert [a.next_u64() for _ in range(50)] == [b.next_u64() for _ in range(50)]

    def test_different_seeds_differ(self):
        a = RandomStream(123)
        b = RandomStream(124)
        assert [a.next_u64() for _ in range(10)] != [b.next_u64() for _ in range(10)]

    def test_path_does_not_affect_sequence(self):
        a = RandomStream(5, path="x")
        b = RandomStream(5, path="y")
        assert a.next_u64() == b.next_u64()

    def test_fork_independent_of_consumption(self):
        a = RandomStream(9)
        b = RandomStream(9)
        a.next_u64()  # consume from one parent only
        assert a.fork("child").next_u64() == b.fork("child").next_u64()

    def test_fork_names_give_distinct_streams(self):
        root = RandomStream(1)
        assert root.fork("a").next_u64() != root.fork("b").next_u64()

    def test_derive_seed_stable(self):
        assert derive_seed(42, "x") == derive_seed(42, "x")

    def test_derive_seed_distinct_names(self):
        seeds = {derive_seed(42, f"name{i}") for i in range(1000)}
        assert len(seeds) == 1000

    def test_derive_seed_distinct_parents(self):
        assert derive_seed(1, "x") != derive_seed(2, "x")


class TestDistributions:
    def test_uniform_in_unit_interval(self):
        stream = RandomStream(3)
        for _ in range(1000):
            value = stream.uniform()
            assert 0.0 <= value < 1.0

    def test_uniform_mean_reasonable(self):
        stream = RandomStream(4)
        mean = sum(stream.uniform() for _ in range(5000)) / 5000
        assert 0.45 < mean < 0.55

    def test_randint_bounds(self):
        stream = RandomStream(5)
        values = [stream.randint(3, 9) for _ in range(500)]
        assert min(values) >= 3
        assert max(values) <= 9
        assert set(values) == set(range(3, 10))  # all values reachable

    def test_randint_single_value(self):
        stream = RandomStream(6)
        assert stream.randint(7, 7) == 7

    def test_randint_empty_range_raises(self):
        with pytest.raises(ValueError):
            RandomStream(1).randint(5, 4)

    def test_gauss_moments(self):
        stream = RandomStream(8)
        values = [stream.gauss(10.0, 2.0) for _ in range(4000)]
        mean = sum(values) / len(values)
        var = sum((v - mean) ** 2 for v in values) / len(values)
        assert abs(mean - 10.0) < 0.15
        assert abs(var - 4.0) < 0.5

    def test_choice_from_sequence(self):
        stream = RandomStream(9)
        items = ["a", "b", "c"]
        seen = {stream.choice(items) for _ in range(100)}
        assert seen == {"a", "b", "c"}

    def test_choice_empty_raises(self):
        with pytest.raises(ValueError):
            RandomStream(1).choice([])


class TestShuffling:
    def test_shuffle_is_permutation(self):
        stream = RandomStream(10)
        items = list(range(20))
        shuffled = items.copy()
        stream.shuffle(shuffled)
        assert sorted(shuffled) == items

    def test_permutation_valid(self):
        perm = RandomStream(11).permutation(15)
        assert sorted(perm) == list(range(15))

    def test_sample_without_replacement_distinct(self):
        sample = RandomStream(12).sample_without_replacement(range(100), 30)
        assert len(sample) == len(set(sample)) == 30
        assert all(0 <= v < 100 for v in sample)

    def test_sample_too_many_raises(self):
        with pytest.raises(ValueError):
            RandomStream(1).sample_without_replacement(range(3), 4)

    def test_numpy_rng_deterministic(self):
        a = RandomStream(13).numpy_rng().random(10)
        b = RandomStream(13).numpy_rng().random(10)
        assert (a == b).all()


@given(seed=st.integers(min_value=0, max_value=2**64 - 1))
@settings(max_examples=50, deadline=None)
def test_property_uniform_range(seed):
    stream = RandomStream(seed)
    for _ in range(20):
        assert 0.0 <= stream.uniform() < 1.0


@given(
    seed=st.integers(min_value=0, max_value=2**63),
    low=st.integers(min_value=-1000, max_value=1000),
    span=st.integers(min_value=0, max_value=500),
)
@settings(max_examples=100, deadline=None)
def test_property_randint_in_bounds(seed, low, span):
    value = RandomStream(seed).randint(low, low + span)
    assert low <= value <= low + span


@given(seed=st.integers(min_value=0, max_value=2**63), n=st.integers(min_value=0, max_value=64))
@settings(max_examples=60, deadline=None)
def test_property_permutation(seed, n):
    assert sorted(RandomStream(seed).permutation(n)) == list(range(n))
