"""Smoke tests: the example scripts run and produce their key output.

Only the two fastest examples run here (the full set is exercised
manually / by CI at lower frequency); the goal is to catch API drift
that would break the documented entry points.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _run(script: str, timeout: int = 240) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = _run("quickstart.py")
        assert "perfect branch prediction" in out
        assert "significant" in out

    def test_full_campaign(self):
        out = _run("full_campaign.py")
        assert "machine park" in out
        assert "470.lbm" in out
        assert "no" in out  # the designed t-test failure

    @pytest.mark.parametrize(
        "script",
        [
            "evaluate_new_predictor.py",
            "cache_interferometry.py",
            "measurement_bias.py",
            "code_placement.py",
            "indirect_interferometry.py",
        ],
    )
    def test_other_examples_importable(self, script):
        """The slower examples must at least parse and import cleanly."""
        source = (EXAMPLES / script).read_text()
        compile(source, script, "exec")
