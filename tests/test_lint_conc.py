"""The concurrency lint pack: threadflow contexts and CONC002-CONC005.

Covers the concurrency-context model (thread targets, signal handlers,
thread-pool submissions resolve; process pools and unresolvable
targets do not), a true-positive/true-negative fixture corpus per
rule, the mutation checks the issue demands (swapping the monotonic
clock for the wall clock in a copy of ``supervise.py`` must produce
CONC005 at the exact line), and the suppression path for deliberate
patterns.
"""

from __future__ import annotations

import ast
import contextlib
import io
import json
from pathlib import Path

from repro.lint.callgraph import CallGraph, Program
from repro.lint.cli import main as lint_main
from repro.lint.rules.base import annotate_parents
from repro.lint.threadflow import ConcurrencyModel

CONC_RULES = "CONC002,CONC003,CONC004,CONC005"

REPO_ROOT = Path(__file__).resolve().parents[1]


def run_cli(*argv):
    out, err = io.StringIO(), io.StringIO()
    with contextlib.redirect_stdout(out), contextlib.redirect_stderr(err):
        code = lint_main(list(argv))
    return code, out.getvalue(), err.getvalue()


def write_tree(tmp_path: Path, files: dict[str, str]) -> Path:
    for rel, source in files.items():
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source)
    return tmp_path


def lint_tree(tmp_path: Path, files: dict[str, str], rules: str = CONC_RULES):
    root = write_tree(tmp_path, files)
    return run_cli("--rules", rules, str(root))


def findings_json(tmp_path: Path, files: dict[str, str], rules: str = CONC_RULES):
    root = write_tree(tmp_path, files)
    _, out, _ = run_cli("--rules", rules, "--json", str(root))
    return json.loads(out)


def by_rule(tmp_path: Path, files: dict[str, str], rules: str = CONC_RULES):
    return findings_json(tmp_path, files, rules)["summary"]["by_rule"]


def build_model(sources: dict[str, str]) -> ConcurrencyModel:
    parsed = []
    for rel, source in sorted(sources.items()):
        tree = ast.parse(source)
        annotate_parents(tree)
        parsed.append((rel, tree, source.splitlines()))
    program = Program.build(parsed)
    return ConcurrencyModel(program, CallGraph(program))


# ----------------------------------------------------------------------
# The concurrency-context model.
# ----------------------------------------------------------------------


class TestConcurrencyModel:
    def test_thread_target_and_its_callees_get_thread_context(self):
        model = build_model({
            "src/repro/core/app.py": (
                "import threading\n"
                "def helper():\n"
                "    return 1\n"
                "def worker():\n"
                "    return helper()\n"
                "def launch():\n"
                "    t = threading.Thread(target=worker, daemon=True)\n"
                "    t.start()\n"
                "    t.join()\n"
            ),
        })
        assert model.contexts_of("repro.core.app.worker") == {"thread"}
        assert model.contexts_of("repro.core.app.helper") == {"thread"}
        assert model.contexts_of("repro.core.app.launch") == frozenset()

    def test_signal_handler_context_via_bound_method(self):
        model = build_model({
            "src/repro/core/app.py": (
                "import signal\n"
                "class H:\n"
                "    def _mark(self):\n"
                "        self.hit = True\n"
                "    def _handle(self, signum, frame):\n"
                "        self._mark()\n"
                "    def install(self):\n"
                "        signal.signal(signal.SIGINT, self._handle)\n"
            ),
        })
        assert model.contexts_of("repro.core.app.H._handle") == {"signal"}
        assert model.contexts_of("repro.core.app.H._mark") == {"signal"}
        assert model.contexts_of("repro.core.app.H.install") == frozenset()

    def test_thread_pool_submission_counts_process_pool_does_not(self):
        model = build_model({
            "src/repro/core/app.py": (
                "from concurrent.futures import ProcessPoolExecutor\n"
                "from concurrent.futures import ThreadPoolExecutor\n"
                "def shared():\n"
                "    return 1\n"
                "def isolated():\n"
                "    return 2\n"
                "def launch():\n"
                "    with ThreadPoolExecutor() as tp:\n"
                "        tp.submit(shared)\n"
                "    with ProcessPoolExecutor() as pp:\n"
                "        pp.submit(isolated)\n"
            ),
        })
        assert model.contexts_of("repro.core.app.shared") == {"thread"}
        # Process-pool workers share no memory: not a thread context.
        assert model.contexts_of("repro.core.app.isolated") == frozenset()

    def test_unresolvable_target_contributes_no_context(self):
        model = build_model({
            "src/repro/core/app.py": (
                "import threading\n"
                "def maybe_worker():\n"
                "    return 1\n"
                "def launch(fn):\n"
                "    threading.Thread(target=fn, daemon=True).start()\n"
            ),
        })
        assert model.contexts_of("repro.core.app.maybe_worker") == frozenset()

    def test_nested_def_target_seeds_reachability(self):
        model = build_model({
            "src/repro/core/app.py": (
                "import threading\n"
                "def helper():\n"
                "    return 1\n"
                "def launch():\n"
                "    def work():\n"
                "        helper()\n"
                "    t = threading.Thread(target=work, daemon=True)\n"
                "    t.start()\n"
                "    t.join()\n"
            ),
        })
        assert model.contexts_of("repro.core.app.helper") == {"thread"}


# ----------------------------------------------------------------------
# CONC002 — cross-context shared state.
# ----------------------------------------------------------------------

_RACY_CLASS = (
    "import threading\n"
    "class Collector:\n"
    "    def __init__(self):\n"
    "        self.items = []\n"
    "    def worker(self):\n"
    "        self.items.append(1)\n"
    "    def drain(self):\n"
    "        return len(self.items)\n"
    "def launch():\n"
    "    c = Collector()\n"
    "    t = threading.Thread(target=c.worker, daemon=True)\n"
    "    t.start()\n"
    "    t.join()\n"
    "    return c.drain()\n"
)


class TestSharedStateRule:
    def test_cross_context_append_flags(self, tmp_path):
        counts = by_rule(tmp_path, {"src/repro/core/app.py": _RACY_CLASS})
        assert counts.get("CONC002") == 1

    def test_lock_guard_silences(self, tmp_path):
        guarded = _RACY_CLASS.replace(
            "        self.items = []\n",
            "        self.items = []\n"
            "        self._lock = threading.Lock()\n",
        ).replace(
            "        self.items.append(1)\n",
            "        with self._lock:\n"
            "            self.items.append(1)\n",
        )
        code, _, _ = lint_tree(tmp_path, {"src/repro/core/app.py": guarded})
        assert code == 0

    def test_event_attribute_is_exempt(self, tmp_path):
        source = _RACY_CLASS.replace(
            "        self.items = []\n",
            "        self.items = threading.Event()\n",
        ).replace(
            "        self.items.append(1)\n",
            "        self.items.set()\n",
        ).replace(
            "        return len(self.items)\n",
            "        return self.items.is_set()\n",
        )
        code, _, _ = lint_tree(tmp_path, {"src/repro/core/app.py": source})
        assert code == 0

    def test_plain_store_is_atomic_flag_discipline(self, tmp_path):
        source = _RACY_CLASS.replace(
            "        self.items.append(1)\n",
            "        self.items = [1]\n",
        )
        code, _, _ = lint_tree(tmp_path, {"src/repro/core/app.py": source})
        assert code == 0

    def test_same_context_pair_does_not_flag(self, tmp_path):
        source = (
            "import threading\n"
            "class Collector:\n"
            "    def __init__(self):\n"
            "        self.items = []\n"
            "    def worker(self):\n"
            "        self.items.append(1)\n"
            "        return len(self.items)\n"
            "def launch():\n"
            "    c = Collector()\n"
            "    t = threading.Thread(target=c.worker, daemon=True)\n"
            "    t.start()\n"
            "    t.join()\n"
        )
        code, _, _ = lint_tree(tmp_path, {"src/repro/core/app.py": source})
        assert code == 0

    def test_suppression_with_reason_waives(self, tmp_path):
        suppressed = _RACY_CLASS.replace(
            "        self.items.append(1)\n",
            "        # repro: allow-CONC002 single-producer queue; the"
            " drain only runs after join()\n"
            "        self.items.append(1)\n",
        )
        payload = findings_json(
            tmp_path, {"src/repro/core/app.py": suppressed}
        )
        assert payload["summary"]["by_rule"] == {}
        assert payload["summary"]["suppressed"] == 1


# ----------------------------------------------------------------------
# CONC003 — signal-handler safety.
# ----------------------------------------------------------------------


class TestSignalSafetyRule:
    def test_io_sleep_logging_and_locks_flag(self, tmp_path):
        source = (
            "import logging\n"
            "import signal\n"
            "import time\n"
            "_LOG = logging.getLogger(__name__)\n"
            "def flush_state():\n"
            "    with open('state.json', 'w') as fh:\n"
            "        fh.write('{}')\n"
            "def handler(signum, frame):\n"
            "    time.sleep(0.1)\n"
            "    _LOG.warning('caught %s', signum)\n"
            "    flush_state()\n"
            "def install():\n"
            "    signal.signal(signal.SIGTERM, handler)\n"
        )
        counts = by_rule(tmp_path, {"src/repro/core/app.py": source})
        # sleep + logging in the handler, open() in the reached helper.
        assert counts.get("CONC003") == 3

    def test_flag_telemetry_and_raise_are_sanctioned(self, tmp_path):
        source = (
            "import signal\n"
            "from repro import telemetry\n"
            "from repro.errors import ShutdownRequested\n"
            "class H:\n"
            "    def _handle(self, signum, frame):\n"
            "        if getattr(self, 'armed', False):\n"
            "            raise ShutdownRequested('drain', signal_name='X')\n"
            "        self.armed = True\n"
            "        telemetry.count('signals')\n"
            "    def install(self):\n"
            "        signal.signal(signal.SIGINT, self._handle)\n"
        )
        code, _, _ = lint_tree(tmp_path, {"src/repro/core/app.py": source})
        assert code == 0

    def test_nested_def_handler_body_is_checked(self, tmp_path):
        source = (
            "import signal\n"
            "def install():\n"
            "    def handler(signum, frame):\n"
            "        print('caught')\n"
            "    signal.signal(signal.SIGINT, handler)\n"
        )
        counts = by_rule(tmp_path, {"src/repro/core/app.py": source})
        assert counts.get("CONC003") == 1

    def test_lock_acquisition_in_handler_flags(self, tmp_path):
        source = (
            "import signal\n"
            "import threading\n"
            "_state_lock = threading.Lock()\n"
            "def handler(signum, frame):\n"
            "    with _state_lock:\n"
            "        pass\n"
            "def install():\n"
            "    signal.signal(signal.SIGINT, handler)\n"
        )
        counts = by_rule(tmp_path, {"src/repro/core/app.py": source})
        assert counts.get("CONC003") == 1


# ----------------------------------------------------------------------
# CONC004 — lock discipline.
# ----------------------------------------------------------------------


class TestLockDisciplineRule:
    def test_bare_acquire_flags_with_statement_does_not(self, tmp_path):
        source = (
            "import threading\n"
            "class Box:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self.n = 0\n"
            "    def bad(self):\n"
            "        self._lock.acquire()\n"
            "        self.n += 1\n"
            "        self._lock.release()\n"
            "    def good(self):\n"
            "        with self._lock:\n"
            "            self.n += 1\n"
        )
        payload = findings_json(tmp_path, {"src/repro/core/app.py": source})
        assert payload["summary"]["by_rule"].get("CONC004") == 1
        (finding,) = payload["findings"]
        assert "acquire" in finding["message"]

    def test_blocking_call_under_lock_flags(self, tmp_path):
        source = (
            "import threading\n"
            "import time\n"
            "_io_lock = threading.Lock()\n"
            "def slow():\n"
            "    with _io_lock:\n"
            "        time.sleep(1.0)\n"
        )
        counts = by_rule(tmp_path, {"src/repro/core/app.py": source})
        assert counts.get("CONC004") == 1

    def test_future_result_under_lock_flags(self, tmp_path):
        source = (
            "import threading\n"
            "def collect(pool, spec):\n"
            "    state_lock = threading.Lock()\n"
            "    future = pool.submit(spec)\n"
            "    with state_lock:\n"
            "        return future.result()\n"
        )
        counts = by_rule(tmp_path, {"src/repro/core/app.py": source})
        assert counts.get("CONC004") == 1

    def test_inverted_acquisition_order_flags_once(self, tmp_path):
        source = (
            "import threading\n"
            "a_lock = threading.Lock()\n"
            "b_lock = threading.Lock()\n"
            "def forward():\n"
            "    with a_lock:\n"
            "        with b_lock:\n"
            "            return 1\n"
            "def backward():\n"
            "    with b_lock:\n"
            "        with a_lock:\n"
            "            return 2\n"
        )
        counts = by_rule(tmp_path, {"src/repro/core/app.py": source})
        assert counts.get("CONC004") == 1

    def test_consistent_order_is_clean(self, tmp_path):
        source = (
            "import threading\n"
            "a_lock = threading.Lock()\n"
            "b_lock = threading.Lock()\n"
            "def one():\n"
            "    with a_lock:\n"
            "        with b_lock:\n"
            "            return 1\n"
            "def two():\n"
            "    with a_lock:\n"
            "        with b_lock:\n"
            "            return 2\n"
        )
        code, _, _ = lint_tree(tmp_path, {"src/repro/core/app.py": source})
        assert code == 0


# ----------------------------------------------------------------------
# CONC005 — thread lifecycle and the deadline clock.
# ----------------------------------------------------------------------


class TestThreadLifecycleRule:
    def test_unjoined_non_daemon_thread_flags(self, tmp_path):
        source = (
            "import threading\n"
            "def fire_and_forget(fn):\n"
            "    t = threading.Thread(target=fn)\n"
            "    t.start()\n"
        )
        counts = by_rule(tmp_path, {"src/repro/core/app.py": source})
        assert counts.get("CONC005") == 1

    def test_daemon_joined_or_daemonized_are_clean(self, tmp_path):
        source = (
            "import threading\n"
            "def a(fn):\n"
            "    threading.Thread(target=fn, daemon=True).start()\n"
            "def b(fn):\n"
            "    t = threading.Thread(target=fn)\n"
            "    t.start()\n"
            "    t.join()\n"
            "def c(fn):\n"
            "    t = threading.Thread(target=fn)\n"
            "    t.daemon = True\n"
            "    t.start()\n"
        )
        code, _, _ = lint_tree(tmp_path, {"src/repro/core/app.py": source})
        assert code == 0

    def test_wall_clock_in_deadline_statement_flags(self, tmp_path):
        source = (
            "import time\n"
            "def watch(deadline_seconds, started):\n"
            "    remaining = deadline_seconds - (time.time() - started)\n"
            "    return remaining\n"
        )
        payload = findings_json(tmp_path, {"src/repro/core/app.py": source})
        assert payload["summary"]["by_rule"].get("CONC005") == 1
        (finding,) = payload["findings"]
        assert finding["line"] == 3

    def test_wall_clock_via_local_into_deadline_arith_flags(self, tmp_path):
        source = (
            "import time\n"
            "def watch(timeout):\n"
            "    started = time.time()\n"
            "    while True:\n"
            "        if started + timeout < 10:\n"
            "            break\n"
        )
        payload = findings_json(tmp_path, {"src/repro/core/app.py": source})
        assert payload["summary"]["by_rule"].get("CONC005") == 1
        (finding,) = payload["findings"]
        assert finding["line"] == 3

    def test_wall_clock_without_deadline_names_is_det002_territory(
        self, tmp_path
    ):
        source = (
            "import time\n"
            "def stamp():\n"
            "    return {'wall': time.time()}\n"
        )
        code, _, _ = lint_tree(tmp_path, {"src/repro/core/app.py": source})
        assert code == 0


# ----------------------------------------------------------------------
# Mutation checks against the real supervise.py.
# ----------------------------------------------------------------------

_SUPERVISE_REL = "src/repro/core/supervise.py"
_MONOTONIC_LINE = (
    "        remaining = deadline_seconds - "
    "(telemetry.tick_seconds() - started)"
)


class TestSuperviseMutation:
    def _real_source(self) -> str:
        return (REPO_ROOT / _SUPERVISE_REL).read_text()

    def test_shipped_supervise_is_clean(self, tmp_path):
        code, _, _ = lint_tree(
            tmp_path, {_SUPERVISE_REL: self._real_source()}
        )
        assert code == 0

    def test_wall_clock_mutation_flags_the_exact_line(self, tmp_path):
        source = self._real_source()
        assert _MONOTONIC_LINE in source
        mutated = source.replace(
            _MONOTONIC_LINE,
            _MONOTONIC_LINE.replace("tick_seconds", "wall_seconds"),
        )
        expected_line = (
            mutated.splitlines().index(
                _MONOTONIC_LINE.replace("tick_seconds", "wall_seconds")
            )
            + 1
        )
        payload = findings_json(
            tmp_path, {_SUPERVISE_REL: mutated}, rules="CONC005"
        )
        assert payload["summary"]["by_rule"].get("CONC005") == 1
        (finding,) = payload["findings"]
        assert finding["line"] == expected_line
        assert "wall_seconds" in finding["message"]

    def test_started_stamp_mutation_flags_via_dataflow(self, tmp_path):
        source = self._real_source()
        original = "    started = telemetry.tick_seconds()"
        assert original in source
        mutated = source.replace(
            original, "    started = telemetry.wall_seconds()"
        )
        expected_line = (
            mutated.splitlines().index(
                "    started = telemetry.wall_seconds()"
            )
            + 1
        )
        payload = findings_json(
            tmp_path, {_SUPERVISE_REL: mutated}, rules="CONC005"
        )
        assert payload["summary"]["by_rule"].get("CONC005") == 1
        (finding,) = payload["findings"]
        assert finding["line"] == expected_line
