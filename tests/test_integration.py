"""End-to-end integration tests: the paper's pipeline on small campaigns."""

from __future__ import annotations

import numpy as np
import pytest

from repro import units
from repro.core.interferometer import Interferometer
from repro.core.model import PerformanceModel
from repro.harness.lab import Laboratory
from repro.machine.system import XeonE5440
from repro.pintool.brsim import PinTool
from repro.uarch.predictors.perfect import PerfectPredictor
from repro.uarch.predictors.tage import LTagePredictor
from repro.workloads.suite import get_benchmark

from tests.conftest import TEST_SCALE


class TestEndToEnd:
    def test_sensitive_benchmark_full_pipeline(self, lab):
        """Measure -> model -> significant -> sane slope."""
        model = lab.model("445.gobmk")
        assert model.is_significant()
        # Slope is (penalty x exposure)/1000 diluted by other variance
        # channels; it must at least be positive and of the right order.
        assert 0.005 < model.slope < 0.08

    def test_slope_reflects_penalty(self, lab):
        """The fitted MPKI cost should be near the machine's misprediction
        penalty (26 cycles -> 0.026 CPI per MPKI) scaled by exposure."""
        model = lab.model("462.libquantum")
        exposure = lab.benchmark("462.libquantum").personality.mispredict_exposure
        expected = 26.0 * exposure / units.PER_KILO
        assert model.slope == pytest.approx(expected, rel=0.4)

    def test_predicted_perfect_cpi_below_mean(self, lab):
        model = lab.model("445.gobmk")
        prediction = model.perfect_event_prediction()
        assert prediction.mean < float(model.y_values.mean())

    def test_ltage_beats_real_everywhere(self, lab):
        """Pin-simulated L-TAGE MPKI < measured real MPKI (§7.2.2)."""
        interferometer = lab.interferometer
        wins = 0
        names = ["400.perlbench", "445.gobmk", "471.omnetpp"]
        for name in names:
            benchmark = lab.benchmark(name)
            observations = lab.observations(name)
            tool = PinTool([LTagePredictor()], warmup_fraction=0.25)
            exe = interferometer.build_executable(benchmark, 0)
            ltage_mpki = tool.run(exe)["L-TAGE"].mpki
            if ltage_mpki < float(observations.mpkis.mean()):
                wins += 1
        assert wins == len(names)

    def test_reproducibility_across_laboratories(self):
        """Two labs with the same seeds produce identical campaigns."""
        a = Laboratory(scale=TEST_SCALE, machine_seed=11)
        b = Laboratory(scale=TEST_SCALE, machine_seed=11)
        obs_a = a.observations("456.hmmer")
        obs_b = b.observations("456.hmmer")
        assert (obs_a.cpis == obs_b.cpis).all()
        assert (obs_a.mpkis == obs_b.mpkis).all()

    def test_machine_seed_changes_noise_not_structure(self):
        a = Laboratory(scale=TEST_SCALE, machine_seed=11)
        b = Laboratory(scale=TEST_SCALE, machine_seed=12)
        obs_a = a.observations("456.hmmer")
        obs_b = b.observations("456.hmmer")
        # Deterministic structural event counts agree (up to jitter)...
        assert obs_a.mpkis.mean() == pytest.approx(obs_b.mpkis.mean(), rel=0.01)
        # ...but the noisy cycle measurements differ.
        assert not np.array_equal(obs_a.cpis, obs_b.cpis)

    def test_insensitive_benchmarks_have_low_mpki(self, lab):
        sensitive = float(lab.observations("445.gobmk").mpkis.mean())
        insensitive = float(lab.observations("470.lbm").mpkis.mean())
        assert insensitive < sensitive / 3

    def test_perfect_predictor_interferometry_sanity(self, machine):
        """Simulating perfect prediction over observed layouts gives MPKI 0
        and the model's intercept approximates that CPI."""
        interferometer = Interferometer(machine, trace_events=2500)
        benchmark = get_benchmark("462.libquantum")
        observations = interferometer.observe(benchmark, n_layouts=8)
        model = PerformanceModel.from_observations(observations)
        tool = PinTool([PerfectPredictor()], warmup_fraction=0.25)
        exe = interferometer.build_executable(benchmark, 0)
        assert tool.run(exe)["perfect"].mpki == 0.0
        prediction = model.perfect_event_prediction()
        # The prediction must land below every observed CPI.
        assert prediction.mean < float(observations.cpis.min())
