"""Coverage for smaller API surfaces not exercised elsewhere."""

from __future__ import annotations

import numpy as np
import pytest

from repro import units
from repro.errors import AllocationError
from repro.heap.layout import DataLayout
from repro.machine.counters import Counter
from repro.machine.pmc import measure_executable
from repro.toolchain.camino import Camino
from repro.toolchain.linker import ObjectFile

from tests.conftest import make_tiny_spec


class TestDataLayoutValidation:
    def test_overlap_detected(self):
        spec = make_tiny_spec()
        bases = np.array([0x1000, 0x1000], dtype=np.int64)  # same base
        layout = DataLayout(
            program=spec.name,
            object_base=bases,
            heap_base=0x1000,
            heap_limit=0x10000,
            allocator="test",
        )
        with pytest.raises(AllocationError, match="overlap"):
            layout.validate_no_overlap(spec)

    def test_base_of(self):
        spec = make_tiny_spec()
        bases = np.array([0x1000, 0x9000], dtype=np.int64)
        layout = DataLayout(
            program=spec.name,
            object_base=bases,
            heap_base=0x1000,
            heap_limit=0x10000,
            allocator="test",
        )
        assert layout.base_of(spec, "table") == 0x1000
        assert layout.base_of(spec, "buffer") == 0x9000


class TestBuildCustom:
    def test_build_custom_matches_manual_order(self, tiny_spec, tiny_trace, camino):
        objects = [
            ObjectFile(name=f.name, procedure_names=f.procedure_names)
            for f in reversed(tiny_spec.files)
        ]
        exe = camino.build_custom(tiny_spec, tiny_trace, objects)
        assert exe.layout_seed == -2
        # Reversed file order: the first procedure of the second file now
        # has the lowest address.
        first_of_second = tiny_spec.files[1].procedure_names[0]
        assert exe.code_layout.link_order[0] == first_of_second

    def test_build_custom_with_heap_seed(self, tiny_spec, tiny_trace, camino):
        objects = camino.base_object_files(tiny_spec)
        a = camino.build_custom(tiny_spec, tiny_trace, objects, heap_seed=1)
        b = camino.build_custom(tiny_spec, tiny_trace, objects, heap_seed=2)
        assert list(a.data_layout.object_base) != list(b.data_layout.object_base)

    def test_build_custom_run_limit(self, tiny_spec, tiny_trace, camino):
        objects = camino.base_object_files(tiny_spec)
        limited = camino.build_custom(tiny_spec, tiny_trace, objects)
        unlimited = camino.build_custom(
            tiny_spec, tiny_trace, objects, apply_run_limit=False
        )
        assert unlimited.trace.n_events == tiny_trace.n_events
        assert limited.trace.n_events <= unlimited.trace.n_events


class TestBtbMetric:
    def test_btb_mpki_via_observation(self, machine, camino, tiny_spec, tiny_trace):
        exe = camino.build(tiny_spec, tiny_trace, layout_seed=0)
        measurement = measure_executable(
            machine, exe, events=[Counter.BTB_MISSES, Counter.BRANCHES]
        )
        assert measurement.btb_mpki >= 0.0
        counts = machine._oracle_counts(exe)
        assert measurement.btb_mpki == pytest.approx(
            units.mpki(counts.btb_misses, counts.instructions), rel=0.02
        )


class TestGasFamilyAccuracy:
    def test_hybrid_family_monotone_on_benchmark(self, camino, perlbench):
        """The Figure-7 sweep is accuracy-monotone in budget on a real
        benchmark trace (averaged over a few layouts)."""
        from repro.uarch.predictors.gas import gas_hybrid_family

        trace = perlbench.trace(3000)
        warmup = trace.n_events // 4
        totals = {p.name: 0 for p in gas_hybrid_family()}
        for seed in range(4):
            exe = camino.build(perlbench.spec, trace, layout_seed=seed)
            addresses = exe.branch_address_stream()
            for predictor in gas_hybrid_family():
                totals[predictor.name] += predictor.simulate(
                    addresses, exe.trace.outcomes, warmup=warmup
                )
        ordered = [totals[f"GAs-{s}KB"] for s in (2, 4, 8, 16)]
        assert ordered == sorted(ordered, reverse=True)
