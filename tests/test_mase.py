"""Tests for the MASE cycle-level simulator and linearity study."""

from __future__ import annotations

import pytest

from repro import units
from repro.mase.configs import N_CONFIGS, mase_predictor_configs
from repro.mase.linearity import LinearityStudy
from repro.mase.simulator import MaseSimulator
from repro.uarch.predictors.bimodal import BimodalPredictor
from repro.uarch.predictors.perfect import PerfectPredictor
from repro.uarch.predictors.static import AlwaysTakenPredictor
from repro.workloads.suite import get_benchmark


class TestConfigs:
    def test_exactly_145(self):
        assert len(mase_predictor_configs()) == N_CONFIGS == 145

    def test_all_constructible_and_distinct_behaviour(self):
        predictors = [factory() for factory in mase_predictor_configs()]
        assert len(predictors) == 145
        # Spot check: a wide spread of storage budgets.
        budgets = {p.storage_bits() for p in predictors}
        assert len(budgets) > 20

    def test_factories_give_fresh_instances(self):
        factory = mase_predictor_configs()[5]
        assert factory() is not factory()


class TestSimulator:
    @pytest.fixture(scope="class")
    def prepared(self):
        simulator = MaseSimulator()
        return simulator, simulator.prepare(get_benchmark("401.bzip2"), trace_events=2000)

    def test_perfect_prediction_floor(self, prepared):
        simulator, prep = prepared
        perfect = simulator.run(prep, PerfectPredictor())
        bimodal = simulator.run(prep, BimodalPredictor(1024))
        static = simulator.run(prep, AlwaysTakenPredictor())
        assert perfect.mpki == 0.0
        assert perfect.cpi < bimodal.cpi < static.cpi
        assert bimodal.mpki < static.mpki

    def test_deterministic(self, prepared):
        simulator, prep = prepared
        a = simulator.run(prep, BimodalPredictor(512))
        b = simulator.run(prep, BimodalPredictor(512))
        assert a == b

    def test_cpi_consistent(self, prepared):
        simulator, prep = prepared
        result = simulator.run(prep, BimodalPredictor(512))
        assert result.cpi == pytest.approx(
            units.cpi(result.cycles, result.instructions)
        )

    def test_more_mispredicts_more_cycles(self, prepared):
        simulator, prep = prepared
        results = [
            simulator.run(prep, factory())
            for factory in mase_predictor_configs()[:20]
        ]
        pairs = sorted((r.mispredicts, r.cycles) for r in results)
        for (m1, c1), (m2, c2) in zip(pairs, pairs[1:]):
            if m2 > m1:
                assert c2 > c1


class TestLinearityStudy:
    @pytest.fixture(scope="class")
    def study_result(self):
        study = LinearityStudy(trace_events=2000, n_configs=15)
        names = ["473.astar", "178.galgel", "401.bzip2"]
        return study.run([get_benchmark(n) for n in names])

    def test_reduced_config_count(self):
        study = LinearityStudy(n_configs=15)
        assert len(study.factories) == 15

    def test_fit_strongly_linear(self, study_result):
        for bench in study_result.benchmarks:
            assert bench.fit.r_squared > 0.97

    def test_nonlinear_benchmark_has_higher_error(self, study_result):
        galgel = study_result.result_for("178.galgel")
        astar = study_result.result_for("473.astar")
        assert galgel.perfect_error_percent > astar.perfect_error_percent

    def test_ltage_error_below_perfect_error(self, study_result):
        """Interpolation (L-TAGE point) beats extrapolation (0 MPKI)."""
        for bench in study_result.benchmarks:
            assert bench.ltage_error_percent <= bench.perfect_error_percent + 0.2

    def test_normalized_points(self, study_result):
        bench = study_result.result_for("401.bzip2")
        mpkis, normalized = bench.normalized_points()
        assert (normalized >= 1.0).all()  # no predictor beats perfect

    def test_sorted_by_error(self, study_result):
        ordered = study_result.sorted_by_perfect_error()
        errors = [b.perfect_error_percent for b in ordered]
        assert errors == sorted(errors)

    def test_unknown_benchmark_lookup(self, study_result):
        with pytest.raises(KeyError):
            study_result.result_for("nope")

    def test_means(self, study_result):
        assert study_result.mean_perfect_error >= 0.0
        assert study_result.mean_ltage_error >= 0.0
