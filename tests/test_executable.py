"""Tests for executables and address binding."""

from __future__ import annotations

import numpy as np


def _build(camino, spec, trace, layout_seed, heap_seed=None):
    return camino.build(spec, trace, layout_seed=layout_seed, heap_seed=heap_seed)


class TestAddressBinding:
    def test_site_addresses_formula(self, camino, tiny_spec, tiny_trace):
        exe = _build(camino, tiny_spec, tiny_trace, 1)
        addrs = exe.branch_site_addresses()
        expected = (
            exe.code_layout.proc_base[tiny_trace.site_proc] + tiny_trace.site_offset
        )
        assert (addrs == expected).all()

    def test_branch_stream_gathers_sites(self, camino, tiny_spec, tiny_trace):
        exe = _build(camino, tiny_spec, tiny_trace, 1)
        stream = exe.branch_address_stream()
        sites = exe.branch_site_addresses()
        assert (stream == sites[exe.trace.site_ids]).all()

    def test_ifetch_addresses_within_text(self, camino, tiny_spec, tiny_trace):
        exe = _build(camino, tiny_spec, tiny_trace, 1)
        ifetch = exe.ifetch_address_stream()
        assert ifetch.min() >= exe.code_layout.text_base
        assert ifetch.max() < exe.code_layout.text_base + exe.code_layout.text_size

    def test_data_addresses_within_heap(self, camino, tiny_spec, tiny_trace):
        exe = _build(camino, tiny_spec, tiny_trace, 1, heap_seed=3)
        data = exe.data_address_stream()
        assert data.min() >= exe.data_layout.heap_base
        assert data.max() < exe.data_layout.heap_limit

    def test_streams_cached(self, camino, tiny_spec, tiny_trace):
        exe = _build(camino, tiny_spec, tiny_trace, 1)
        assert exe.branch_address_stream() is exe.branch_address_stream()

    def test_layouts_move_addresses(self, camino, tiny_spec, tiny_trace):
        a = _build(camino, tiny_spec, tiny_trace, 1)
        b = _build(camino, tiny_spec, tiny_trace, 2)
        assert not np.array_equal(
            a.branch_site_addresses(), b.branch_site_addresses()
        )

    def test_outcomes_layout_invariant(self, camino, tiny_spec, tiny_trace):
        a = _build(camino, tiny_spec, tiny_trace, 1)
        b = _build(camino, tiny_spec, tiny_trace, 2)
        assert (a.trace.outcomes == b.trace.outcomes).all()
        assert a.n_instructions == b.n_instructions


class TestFingerprint:
    def test_stable(self, camino, tiny_spec, tiny_trace):
        a = _build(camino, tiny_spec, tiny_trace, 1)
        b = _build(camino, tiny_spec, tiny_trace, 1)
        assert a.fingerprint == b.fingerprint

    def test_differs_by_code_layout(self, camino, tiny_spec, tiny_trace):
        a = _build(camino, tiny_spec, tiny_trace, 1)
        b = _build(camino, tiny_spec, tiny_trace, 2)
        assert a.fingerprint != b.fingerprint

    def test_differs_by_heap_layout(self, camino, tiny_spec, tiny_trace):
        a = _build(camino, tiny_spec, tiny_trace, 1, heap_seed=1)
        b = _build(camino, tiny_spec, tiny_trace, 1, heap_seed=2)
        assert a.fingerprint != b.fingerprint
