"""Fault-injection matrix: every injected failure mode is recovered
bit-identically, and exhausted budgets yield structured reports, not
tracebacks.

The load-bearing invariant: every measurement is a pure function of
(machine seed, benchmark, layout index), so a retried read, a retried
campaign, a degraded (parallel->serial) campaign, and a re-measured
quarantined cache entry all reproduce the exact bits a fault-free run
would have produced.  These tests assert that equality literally.
"""

from __future__ import annotations

import json
import pickle

import pytest

from repro import faults
from repro.core.interferometer import Interferometer
from repro.core.park import MachinePark
from repro.errors import (
    CampaignExecutionError,
    ConfigurationError,
    CorruptCampaignError,
    MeasurementTimeout,
    SuiteExecutionError,
    TransientError,
    TransientMeasurementError,
)
from repro.faults import CANNED_PLANS, FailureReport, FaultPlan, RetryPolicy
from repro.harness.lab import Laboratory, Scale
from repro.machine.counters import Counter, validate_reading
from repro.machine.pmc import CounterGroupPlan, CounterSession, PAPER_EVENTS
from repro.persistence import load_campaign
from repro.store import CampaignKey, CampaignStore, config_digest
from repro.workloads.suite import get_benchmark

from tests.test_model import _synthetic_observations

#: Tiny scale so every measured campaign is a handful of layouts.
TINY = Scale(
    name="tiny",
    n_layouts=4,
    trace_events=2500,
    mase_trace_events=2000,
    mase_configs=5,
    ltage_layouts=4,
)


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    """Every test leaves the process-wide plan as it found the env."""
    yield
    faults.clear()


@pytest.fixture(scope="module")
def park():
    return MachinePark(n_machines=2, base_seed=9, trace_events=2500)


def assert_bit_identical(a, b):
    """Two observation sets carry literally the same measured bits."""
    assert len(a) == len(b)
    assert (a.cpis == b.cpis).all()
    assert (a.mpkis == b.mpkis).all()
    for x, y in zip(a, b):
        assert x.layout_index == y.layout_index
        assert x.layout_seed == y.layout_seed
        assert dict(x.measurement.counters) == dict(y.measurement.counters)


def _store_key(seed=7, benchmark="456.hmmer"):
    from repro.machine.system import XeonE5440

    return CampaignKey(
        benchmark=benchmark,
        trace_events=2500,
        runs_per_group=5,
        machine_seed=seed,
        config_digest=config_digest(XeonE5440(seed=seed).config),
        randomize_heap=False,
    )


class TestFaultPlanParsing:
    def test_canned_profiles(self):
        plan = FaultPlan.from_spec("flaky")
        assert plan.flaky_read == pytest.approx(0.10)
        assert FaultPlan.from_spec("chaos").worker_crash > 0
        hung = FaultPlan.from_spec("hung")
        assert hung.worker_hang > 0
        assert hung.hang_seconds == pytest.approx(20.0)
        assert set(CANNED_PLANS) == {"flaky", "chaos", "hung"}

    @pytest.mark.parametrize("spec", ["", "  ", "none", "off", "NONE"])
    def test_disabled_specs(self, spec):
        assert FaultPlan.from_spec(spec) is None

    def test_field_value_pairs(self):
        plan = FaultPlan.from_spec(
            "seed=0x7,flaky_read=0.25,hard_crash=yes,"
            "crash_benchmarks=456.hmmer+470.lbm,stall_seconds=0.5"
        )
        assert plan.seed == 7
        assert plan.flaky_read == pytest.approx(0.25)
        assert plan.hard_crash is True
        assert plan.crash_benchmarks == ("456.hmmer", "470.lbm")
        assert plan.stall_seconds == pytest.approx(0.5)

    def test_hang_fields_parsed(self):
        plan = FaultPlan.from_spec(
            "seed=2,worker_hang=0.5,hang_benchmarks=470.lbm,hang_seconds=1.5"
        )
        assert plan.worker_hang == pytest.approx(0.5)
        assert plan.hang_benchmarks == ("470.lbm",)
        assert plan.hang_seconds == pytest.approx(1.5)

    def test_forced_hang_fires_once_per_process(self):
        plan = FaultPlan(seed=1, hang_benchmarks=("470.lbm",))
        assert plan.hangs_worker("470.lbm")
        assert not plan.hangs_worker("470.lbm")  # second draw: recovered
        assert not plan.hangs_worker("456.hmmer")
        # A pickled copy — what a pool worker inherits — draws afresh.
        clone = pickle.loads(pickle.dumps(plan))
        assert clone.hangs_worker("470.lbm")

    def test_hang_rate_is_occurrence_keyed(self):
        plan = FaultPlan(seed=3, worker_hang=0.5)
        draws = [plan.hangs_worker("456.hmmer") for _ in range(32)]
        assert any(draws) and not all(draws)
        # The same schedule replays identically in a fresh plan.
        replay = FaultPlan(seed=3, worker_hang=0.5)
        assert draws == [replay.hangs_worker("456.hmmer") for _ in range(32)]

    def test_unknown_field_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown fault plan field"):
            FaultPlan.from_spec("bogus=1")

    def test_bad_value_rejected(self):
        with pytest.raises(ConfigurationError, match="bad value"):
            FaultPlan.from_spec("flaky_read=lots")

    def test_missing_value_rejected(self):
        with pytest.raises(ConfigurationError, match="field=value"):
            FaultPlan.from_spec("flaky_read")

    def test_rate_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError, match="must be in"):
            FaultPlan(flaky_read=1.5)
        with pytest.raises(ConfigurationError, match="must be in"):
            FaultPlan.from_spec("torn_write=-0.1")


class TestFaultPlanDecisions:
    def test_schedule_deterministic_across_instances(self):
        a = FaultPlan(seed=11, flaky_read=0.5)
        b = FaultPlan(seed=11, flaky_read=0.5)
        draws_a = [a.read_fault("k") for _ in range(64)]
        draws_b = [b.read_fault("k") for _ in range(64)]
        assert draws_a == draws_b
        assert "flaky" in draws_a  # the rate actually fires

    def test_different_seed_different_schedule(self):
        a = [FaultPlan(seed=1, flaky_read=0.5).read_fault(f"k{i}") for i in range(64)]
        b = [FaultPlan(seed=2, flaky_read=0.5).read_fault(f"k{i}") for i in range(64)]
        assert a != b

    def test_retry_draws_fresh_occurrence(self):
        """A retried operation is not doomed to refail: the occurrence
        number advances, so under a fractional rate some key eventually
        flips between consecutive draws."""
        plan = FaultPlan(seed=3, flaky_read=0.5)
        flips = sum(
            plan.read_fault("same-key") != plan.read_fault("same-key")
            for _ in range(64)
        )
        assert flips > 0

    def test_only_benchmarks_gates_faults(self):
        plan = FaultPlan(seed=1, flaky_read=1.0, only_benchmarks=("470.lbm",))
        assert plan.read_fault("k", benchmark="456.hmmer") is None
        assert plan.read_fault("k", benchmark="470.lbm") == "flaky"
        # Unknown context is fair game.
        assert plan.read_fault("k", benchmark=None) == "flaky"

    def test_crash_benchmarks_forced_and_stable(self):
        plan = FaultPlan(seed=1, crash_benchmarks=("456.hmmer",))
        assert plan.crashes_worker("456.hmmer")
        assert not plan.crashes_worker("470.lbm")
        # Rate-based crashing is per-benchmark stable (not occurrence-keyed).
        chaotic = FaultPlan(seed=5, worker_crash=0.5)
        first = [chaotic.crashes_worker(f"b{i}") for i in range(16)]
        again = [chaotic.crashes_worker(f"b{i}") for i in range(16)]
        assert first == again
        assert any(first) and not all(first)

    def test_pickled_plan_starts_fresh_schedule(self):
        plan = FaultPlan(seed=11, flaky_read=0.5)
        for _ in range(8):
            plan.read_fault("k")
        clone = pickle.loads(pickle.dumps(plan))
        assert clone._counts == {}
        assert clone == plan  # _counts excluded from comparison

    def test_invalid_stall_seconds(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(stall_seconds=-1.0)


class TestActivePlan:
    def test_env_var_installs_plan(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_PLAN", "flaky")
        faults.clear()
        plan = faults.active_plan()
        assert plan is not None
        assert plan.flaky_read == pytest.approx(0.10)

    def test_no_env_no_plan(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULT_PLAN", raising=False)
        faults.clear()
        assert faults.active_plan() is None

    def test_injected_restores_prior(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULT_PLAN", raising=False)
        faults.clear()
        outer = FaultPlan(seed=1)
        faults.install(outer)
        with faults.injected(FaultPlan(seed=2)) as inner:
            assert faults.active_plan() is inner
        assert faults.active_plan() is outer

    def test_plan_scope_keeps_inherited_when_none(self):
        inherited = FaultPlan(seed=9)
        with faults.injected(inherited):
            with faults.plan_scope(None):
                assert faults.active_plan() is inherited
            travelling = FaultPlan(seed=10)
            with faults.plan_scope(travelling):
                assert faults.active_plan() is travelling

    def test_max_retries_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_RETRIES", "5")
        assert faults.max_retries_from_env() == 5
        assert RetryPolicy.from_env().max_retries == 5
        monkeypatch.setenv("REPRO_MAX_RETRIES", "many")
        with pytest.raises(ConfigurationError):
            faults.max_retries_from_env()
        monkeypatch.setenv("REPRO_MAX_RETRIES", "-1")
        with pytest.raises(ConfigurationError):
            faults.max_retries_from_env()

    def test_backoff_schedule(self):
        policy = RetryPolicy(max_retries=4, backoff_base=0.1, backoff_cap=0.3)
        assert policy.delay(0) == pytest.approx(0.1)
        assert policy.delay(1) == pytest.approx(0.2)
        assert policy.delay(2) == pytest.approx(0.3)  # capped
        assert policy.delay(10) == pytest.approx(0.3)


class TestSeededJitter:
    def test_zero_jitter_preserves_legacy_schedule(self):
        policy = RetryPolicy(max_retries=4, backoff_base=0.1, backoff_cap=0.3)
        # The key is ignored without jitter: same exact exponential.
        assert policy.delay(1, key="456.hmmer") == pytest.approx(0.2)

    def test_jittered_schedule_is_deterministic(self):
        a = RetryPolicy(jitter=0.5)
        b = RetryPolicy(jitter=0.5)
        schedule = [a.delay(i, key="456.hmmer") for i in range(5)]
        assert schedule == [b.delay(i, key="456.hmmer") for i in range(5)]

    def test_different_campaigns_desynchronize(self):
        policy = RetryPolicy(jitter=1.0)
        xs = [policy.delay(i, key="456.hmmer") for i in range(6)]
        ys = [policy.delay(i, key="470.lbm") for i in range(6)]
        assert xs != ys

    def test_jittered_delays_stay_bounded(self):
        policy = RetryPolicy(jitter=1.0, backoff_base=0.05, backoff_cap=2.0)
        for attempt in range(12):
            delay = policy.delay(attempt, key="456.hmmer")
            assert policy.backoff_base <= delay <= policy.backoff_cap

    def test_jitter_seed_changes_the_schedule(self):
        a = RetryPolicy(jitter=1.0, jitter_seed=1)
        b = RetryPolicy(jitter=1.0, jitter_seed=2)
        assert [a.delay(i, key="x") for i in range(6)] != [
            b.delay(i, key="x") for i in range(6)
        ]

    def test_jitter_validated(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ConfigurationError):
            RetryPolicy(jitter=-0.1)
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff_total_cap=-1.0)

    def test_total_backoff_cap_clips_cumulative_sleep(self):
        policy = RetryPolicy(
            backoff_base=10.0, backoff_cap=10.0, backoff_total_cap=0.0
        )
        assert policy.sleep(0, key="x") == 0.0
        partial = RetryPolicy(
            backoff_base=10.0, backoff_cap=10.0, backoff_total_cap=0.02
        )
        assert partial.sleep(0, key="x") == pytest.approx(0.02)
        assert partial.sleep(0, key="x", already_slept=0.02) == 0.0


class TestReadValidation:
    def test_validate_reading_accepts_plausible(self):
        validate_reading(
            {Counter.CYCLES: 100, Counter.INSTRUCTIONS: 80,
             Counter.BRANCH_MISPREDICTS: 3}
        )

    @pytest.mark.parametrize(
        "reading",
        [
            {Counter.INSTRUCTIONS: 80},  # missing cycles
            {Counter.CYCLES: 0, Counter.INSTRUCTIONS: 80},
            {Counter.CYCLES: 100},  # missing instructions
            {Counter.CYCLES: 100, Counter.INSTRUCTIONS: -1},
            {Counter.CYCLES: 100, Counter.INSTRUCTIONS: 80,
             Counter.L2_MISSES: -4},
        ],
    )
    def test_validate_reading_rejects_impossible(self, reading):
        with pytest.raises(TransientMeasurementError):
            validate_reading(reading)


class TestReadLevelRecovery:
    """CounterSession absorbs transient read faults bit-identically."""

    @pytest.fixture(scope="class")
    def executable(self, machine):
        interferometer = Interferometer(machine, trace_events=2500)
        return interferometer.build_executable(get_benchmark("456.hmmer"), 0)

    @pytest.fixture(scope="class")
    def group(self):
        return CounterGroupPlan.for_events(PAPER_EVENTS).groups[0]

    def test_flaky_reads_rereads_bit_identically(self, machine, executable, group):
        clean = CounterSession(machine, benchmark="456.hmmer").read(
            executable, group, run_key="g0/r0"
        )
        with faults.injected(FaultPlan(seed=11, flaky_read=0.5)):
            session = CounterSession(machine, benchmark="456.hmmer")
            faulty = [
                session.read(executable, group, run_key="g0/r0")
                for _ in range(8)
            ]
        assert session.retried_reads > 0  # faults actually fired
        assert all(dict(r) == dict(clean) for r in faulty)

    def test_garbled_reads_rejected_and_reread(self, machine, executable, group):
        clean = CounterSession(machine, benchmark="456.hmmer").read(
            executable, group, run_key="g0/r0"
        )
        with faults.injected(FaultPlan(seed=4, garbled_read=0.5)):
            session = CounterSession(machine, benchmark="456.hmmer")
            faulty = [
                session.read(executable, group, run_key="g0/r0")
                for _ in range(8)
            ]
        assert session.retried_reads > 0
        assert all(dict(r) == dict(clean) for r in faulty)

    def test_stalled_read_raises_timeout(self, machine, executable, group):
        with faults.injected(FaultPlan(seed=2, stalled_read=1.0)):
            session = CounterSession(
                machine, max_read_retries=2, benchmark="456.hmmer"
            )
            with pytest.raises(TransientMeasurementError) as err:
                session.read(executable, group, run_key="g0/r0")
        assert isinstance(err.value.__cause__, MeasurementTimeout)

    def test_exhausted_rereads_escalate(self, machine, executable, group):
        with faults.injected(FaultPlan(seed=2, flaky_read=1.0)):
            session = CounterSession(
                machine, max_read_retries=3, benchmark="456.hmmer"
            )
            with pytest.raises(TransientMeasurementError, match="re-reads"):
                session.read(executable, group, run_key="g0/r0")
        assert session.retried_reads == 4  # initial + 3 re-reads, all failed

    def test_negative_retry_budget_rejected(self, machine):
        from repro.errors import MeasurementError

        with pytest.raises(MeasurementError):
            CounterSession(machine, max_read_retries=-1)

    def test_campaign_under_flaky_plan_bit_identical(self, machine):
        bench = get_benchmark("456.hmmer")
        clean = Interferometer(machine, trace_events=2500).observe(
            bench, n_layouts=2
        )
        with faults.injected(
            FaultPlan(seed=17, flaky_read=0.15, garbled_read=0.05)
        ):
            faulty = Interferometer(machine, trace_events=2500).observe(
                bench, n_layouts=2
            )
        assert_bit_identical(clean, faulty)


class TestStoreHardening:
    def test_atomic_save_leaves_no_temp_files(self, tmp_path):
        store = CampaignStore(tmp_path)
        store.save(_store_key(), _synthetic_observations(n=4, benchmark="456.hmmer"))
        assert not sorted(tmp_path.glob("*.tmp.*"))

    def test_torn_write_quarantined_on_load(self, tmp_path):
        store = CampaignStore(tmp_path)
        key = _store_key()
        original = _synthetic_observations(n=4, benchmark="456.hmmer")
        with faults.injected(FaultPlan(seed=1, torn_write=1.0)):
            store.save(key, original)
        # The torn payload parses as nothing useful: quarantined, a miss.
        assert store.load(key) is None
        assert store.stats.quarantined == 1
        assert sorted(tmp_path.glob("*.corrupt-*"))
        assert not store.path_for(key).exists()
        # A clean re-save round-trips.
        store.save(key, original)
        reloaded = store.load(key)
        assert reloaded is not None
        assert (reloaded.cpis == original.cpis).all()

    def test_checksum_catches_inplace_edit(self, tmp_path):
        """Corruption that still parses as JSON is caught by the payload
        checksum, quarantined, and re-measured — never served."""
        store = CampaignStore(tmp_path)
        key = _store_key()
        store.save(key, _synthetic_observations(n=4, benchmark="456.hmmer"))
        path = store.path_for(key)
        payload = json.loads(path.read_text())
        payload["observations"][0]["counters"][Counter.CYCLES.value] += 1
        path.write_text(json.dumps(payload))
        with pytest.raises(CorruptCampaignError, match="checksum"):
            load_campaign(path)
        assert store.load(key) is None
        assert store.stats.quarantined == 1

    def test_garbage_file_is_a_miss_not_a_crash(self, tmp_path):
        store = CampaignStore(tmp_path)
        key = _store_key()
        store.path_for(key).write_text("}} not json {{")
        assert store.load(key) is None  # no JSONDecodeError escapes
        quarantined = sorted(tmp_path.glob("*.corrupt-*"))
        assert len(quarantined) == 1
        # get() then measures fresh and persists a good file.
        measured = store.get(
            key,
            4,
            lambda start, n: _synthetic_observations(
                n=n, benchmark="456.hmmer"
            ).observations,
        )
        assert len(measured) == 4
        assert store.load(key) is not None

    def test_quarantine_round_trip_through_laboratory(self, tmp_path):
        """Satellite: a corrupted cache entry surfaces as a re-measured,
        bit-identical campaign — Laboratory.observations never sees the
        JSONDecodeError."""
        first = Laboratory(scale=TINY, machine_seed=7, cache_dir=tmp_path)
        baseline = first.observations("456.hmmer")
        key = first._campaign_key("456.hmmer", heap=False)
        path = first.store.path_for(key)
        path.write_text(path.read_text()[: path.stat().st_size // 2])

        lab = Laboratory(scale=TINY, machine_seed=7, cache_dir=tmp_path)
        recovered = lab.observations("456.hmmer")
        assert lab.store.stats.quarantined == 1
        assert lab.store.stats.misses == 1
        assert_bit_identical(baseline, recovered)
        # The quarantined artifact is preserved for forensics...
        assert sorted(tmp_path.glob("*.corrupt-*"))
        # ...and the re-measured campaign was re-persisted cleanly.
        assert lab.store.load(key) is not None


class TestCampaignSupervision:
    def test_transient_failure_recovered_bit_identically(self, monkeypatch):
        baseline = Laboratory(scale=TINY, machine_seed=7).observations("456.hmmer")
        lab = Laboratory(scale=TINY, machine_seed=7, max_retries=2)
        lab.retry_policy = RetryPolicy(max_retries=2, backoff_base=0.0)
        original = Laboratory._measure_campaign_once
        failures = iter([True, False])

        def flaky_once(self, name, heap):
            if next(failures):
                raise TransientMeasurementError("injected campaign fault")
            return original(self, name, heap)

        monkeypatch.setattr(Laboratory, "_measure_campaign_once", flaky_once)
        recovered = lab.observations("456.hmmer")
        assert_bit_identical(baseline, recovered)
        assert [i.status for i in lab.failure_report.incidents] == ["recovered"]
        assert lab.failure_report.recovered[0].attempts == 2
        assert lab.failure_report.ok

    def test_exhausted_budget_raises_structured_error(self):
        lab = Laboratory(scale=TINY, machine_seed=7, max_retries=1)
        lab.retry_policy = RetryPolicy(max_retries=1, backoff_base=0.0)
        with faults.injected(FaultPlan(seed=3, flaky_read=1.0)):
            with pytest.raises(CampaignExecutionError) as err:
                lab.observations("456.hmmer")
        assert err.value.benchmark == "456.hmmer"
        assert err.value.attempts == 2  # initial + 1 retry
        report = lab.failure_report
        assert not report.ok
        assert report.failed[0].benchmark == "456.hmmer"
        assert "456.hmmer" in report.render()

    def test_suite_failure_names_every_campaign(self, park):
        plan = FaultPlan(seed=1, flaky_read=1.0, only_benchmarks=("470.lbm",))
        with faults.injected(plan):
            with pytest.raises(SuiteExecutionError) as err:
                park.observe_suite(
                    ["456.hmmer", "470.lbm"], n_layouts=2, max_retries=0
                )
        report = err.value.report
        assert [i.benchmark for i in report.failed] == ["470.lbm"]
        assert "failed" in str(err.value)

    def test_suite_with_report_returns_survivors(self, park):
        plan = FaultPlan(seed=1, flaky_read=1.0, only_benchmarks=("470.lbm",))
        report = FailureReport()
        with faults.injected(plan):
            results = park.observe_suite(
                ["456.hmmer", "470.lbm"], n_layouts=2, max_retries=0,
                report=report,
            )
        assert set(results) == {"456.hmmer"}  # the casualty is absent, not fatal
        assert [i.benchmark for i in report.failed] == ["470.lbm"]

    def test_fail_fast_aborts_immediately(self, park):
        plan = FaultPlan(seed=1, flaky_read=1.0)
        with faults.injected(plan):
            with pytest.raises(SuiteExecutionError):
                park.observe_suite(
                    ["456.hmmer"], n_layouts=2, max_retries=0, fail_fast=True
                )

    def test_incident_statuses_validated(self):
        with pytest.raises(ConfigurationError):
            FailureReport().record("x", "exploded", attempts=1, error="boom")

    def test_report_rendering(self):
        report = FailureReport()
        report.record("456.hmmer", "recovered", attempts=2, error="flaky")
        report.record("470.lbm", "failed", attempts=3, error="dead", heap=True)
        text = report.render()
        assert "1 recovered, 0 degraded, 1 failed" in text
        assert "RECOVERED 456.hmmer" in text
        assert "FAILED 470.lbm (heap)" in text
        assert not report.ok and bool(report)


class TestGracefulDegradation:
    def test_worker_crash_degrades_to_serial(self, park):
        baseline = park.observe_suite(["456.hmmer", "445.gobmk"], n_layouts=3)
        plan = FaultPlan(seed=1, crash_benchmarks=("445.gobmk",))
        report = FailureReport()
        with faults.injected(plan):
            results = park.observe_suite(
                ["456.hmmer", "445.gobmk"], n_layouts=3, workers=2,
                report=report,
            )
        assert report.ok
        assert [i.benchmark for i in report.degraded] == ["445.gobmk"]
        for name in baseline:
            assert_bit_identical(baseline[name], results[name])

    def test_hard_crash_breaks_pool_but_not_suite(self, park):
        """os._exit in a worker kills the pool (BrokenProcessPool); every
        affected campaign re-runs serially and the suite still completes
        bit-identically."""
        baseline = park.observe_suite(["456.hmmer", "470.lbm"], n_layouts=2)
        plan = FaultPlan(
            seed=1, crash_benchmarks=("456.hmmer",), hard_crash=True
        )
        report = FailureReport()
        with faults.injected(plan):
            results = park.observe_suite(
                ["456.hmmer", "470.lbm"], n_layouts=2, workers=1,
                report=report,
            )
        assert report.degraded  # at least the crashed campaign degraded
        assert report.ok
        assert set(results) == {"456.hmmer", "470.lbm"}
        for name in baseline:
            assert_bit_identical(baseline[name], results[name])

    def test_broken_pool_with_multiple_campaigns_in_flight(self, park):
        """Two hard crashers among three campaigns: each pool break is
        attributed to its offender (degraded + serial recovery), the
        bystander keeps its parallelism in a fresh pool, and the whole
        suite completes bit-identically."""
        names = ["456.hmmer", "445.gobmk", "470.lbm"]
        baseline = park.observe_suite(names, n_layouts=3)
        plan = FaultPlan(
            seed=1, crash_benchmarks=("456.hmmer", "445.gobmk"),
            hard_crash=True,
        )
        report = FailureReport()
        with faults.injected(plan):
            results = park.observe_suite(
                names, n_layouts=3, workers=2, report=report
            )
        assert report.ok
        assert set(results) == set(names)
        assert {i.benchmark for i in report.degraded} == {
            "456.hmmer", "445.gobmk",
        }
        # Two consecutive pool failures stay under the default threshold.
        assert report.breaker_tripped is None
        for name in names:
            assert_bit_identical(baseline[name], results[name])


class TestAcceptanceMatrix:
    def test_flaky_reads_worker_crash_and_corrupt_cache(self, tmp_path):
        """The issue's acceptance scenario: >=10% flaky counter reads, one
        worker crash, and one corrupted cache file — observe_suite over 3
        benchmarks completes, bit-identical to a fault-free run."""
        names = ["456.hmmer", "445.gobmk", "470.lbm"]
        baseline_lab = Laboratory(scale=TINY, machine_seed=7)
        baseline = {name: baseline_lab.observations(name) for name in names}

        # Seed the cache with one campaign, then corrupt it in place
        # (the others stay unstored so the park actually measures them).
        seeder = Laboratory(scale=TINY, machine_seed=7, cache_dir=tmp_path)
        seeder.observations("470.lbm")
        victim = seeder.store.path_for(
            seeder._campaign_key("470.lbm", heap=False)
        )
        victim.write_text(victim.read_text()[:40])

        plan = FaultPlan(
            seed=0xACCE, flaky_read=0.12, crash_benchmarks=("445.gobmk",)
        )
        lab = Laboratory(scale=TINY, machine_seed=7, cache_dir=tmp_path, workers=2)
        with faults.injected(plan):
            lab.prefetch(names)
            results = {name: lab.observations(name) for name in names}

        for name in names:
            assert_bit_identical(baseline[name], results[name])
        assert lab.store.stats.quarantined == 1
        assert lab.failure_report.ok
        assert [i.benchmark for i in lab.failure_report.degraded] == ["445.gobmk"]
        # The re-measured campaign replaced the corrupt cache entry.
        reloaded = lab.store.load(lab._campaign_key("470.lbm", heap=False))
        assert reloaded is not None
        assert_bit_identical(baseline["470.lbm"], reloaded)


class TestCliFaults:
    def test_bad_fault_plan_is_usage_error(self, capsys):
        from repro.cli import main

        assert main(["headline", "--fault-plan", "bogus=1"]) == 2
        assert "--fault-plan" in capsys.readouterr().err

    def test_negative_max_retries_is_usage_error(self, capsys):
        from repro.cli import main

        assert main(["headline", "--max-retries", "-1"]) == 2
        assert "--max-retries" in capsys.readouterr().err

    def test_help_documents_exit_codes(self, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit) as exc:
            main(["--help"])
        assert exc.value.code == 0
        out = capsys.readouterr().out
        assert "exit codes" in out
        assert "partial failure" in out

    def test_flaky_profile_absorbed_exit_zero(self, capsys):
        from repro.cli import main

        assert main(["headline", "--scale", "ci", "--fault-plan", "flaky"]) == 0

    def test_exhausted_budget_exits_one_with_report(self, capsys):
        from repro.cli import main

        code = main(
            [
                "headline", "--scale", "ci", "--max-retries", "0",
                "--fault-plan",
                "seed=3,flaky_read=1.0,only_benchmarks=400.perlbench",
            ]
        )
        captured = capsys.readouterr()
        assert code == 1
        assert "FAILED" in captured.out
        assert "400.perlbench" in captured.out
        assert "partial failure" in captured.err
        assert "Traceback" not in captured.out + captured.err

    def test_plan_does_not_leak_out_of_main(self, monkeypatch, capsys):
        from repro.cli import main

        monkeypatch.delenv("REPRO_FAULT_PLAN", raising=False)
        faults.clear()
        assert main(["headline", "--scale", "ci", "--fault-plan", "flaky"]) == 0
        assert faults.active_plan() is None
