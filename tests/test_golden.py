"""Golden reproducibility pins.

The layout-seed sequence and the synthetic suite are *published
contracts*: the paper's methodology depends on every tool seeing the
same reorderings ("the same first 100 reorderings", §7.2), and any
change to the workload generator silently invalidates recorded
campaigns.  These tests pin literal values so such changes are loud.
If you change them intentionally, bump the suite's MASTER_SEED story in
docs/METHODOLOGY.md and regenerate EXPERIMENTS.md.
"""

from __future__ import annotations

from repro.core.interferometer import heap_seed, layout_seed
from repro.workloads.suite import get_benchmark


class TestGoldenSeeds:
    def test_layout_seed_sequence_pinned(self):
        assert layout_seed("400.perlbench", 0) == 306948419458927884
        assert layout_seed("400.perlbench", 99) == 7285435275213814084

    def test_heap_seed_pinned(self):
        assert heap_seed("454.calculix", 0) == 2585991850853472037


class TestGoldenSuite:
    def test_perlbench_spec_digest_pinned(self):
        benchmark = get_benchmark("400.perlbench")
        assert benchmark.spec.digest == "82d2faaef1d3f01dd6d2bc9a"
        assert benchmark.trace_seed == 6544350364003759159

    def test_perlbench_trace_prefix_pinned(self):
        trace = get_benchmark("400.perlbench").trace(2000)
        assert int(trace.outcomes[:64].sum()) == 43
        assert int(trace.site_ids[:8].sum()) == 328
        assert trace.total_instructions == 14089
