"""Tests for the reference machine: core model, timing, PMC protocol."""

from __future__ import annotations

import numpy as np
import pytest

from repro import units
from repro.errors import MeasurementError
from repro.machine.config import NoiseParameters, TimingParameters, XeonE5440Config
from repro.machine.counters import PAPER_EVENTS, Counter
from repro.machine.pmc import CounterGroupPlan, PerfEx, measure_executable
from repro.machine.system import XeonE5440
from repro.machine.timing import (
    core_frequency_offset,
    deterministic_cycles,
    jittered_count,
    noisy_cycles,
)

from tests.conftest import make_tiny_spec


@pytest.fixture(scope="module")
def exe(camino, tiny_spec, tiny_trace):
    return camino.build(tiny_spec, tiny_trace, layout_seed=1)


class TestCoreModel:
    def test_counts_deterministic(self, machine, exe):
        a = machine._oracle_counts(exe)
        b = machine._oracle_counts(exe)
        assert a == b

    def test_counts_plausible(self, machine, exe):
        counts = machine._oracle_counts(exe)
        assert 0 < counts.mispredicts <= counts.branches
        assert counts.instructions > counts.branches
        assert counts.l1i_misses <= counts.l1i_accesses
        assert counts.l1d_misses <= counts.l1d_accesses
        assert counts.l2_misses <= counts.l1i_misses + counts.l1d_misses

    def test_layouts_change_mispredicts(self, machine, camino, tiny_spec, tiny_trace):
        values = {
            machine._oracle_counts(
                camino.build(tiny_spec, tiny_trace, layout_seed=seed)
            ).mispredicts
            for seed in range(8)
        }
        assert len(values) > 1

    def test_instructions_layout_invariant(
        self, machine, camino, tiny_spec, tiny_trace
    ):
        values = {
            machine._oracle_counts(
                camino.build(tiny_spec, tiny_trace, layout_seed=seed)
            ).instructions
            for seed in range(5)
        }
        assert len(values) == 1

    def test_derived_rates(self, machine, exe):
        counts = machine._oracle_counts(exe)
        assert counts.mpki == pytest.approx(
            units.mpki(counts.mispredicts, counts.instructions)
        )
        assert counts.l2_mpki <= counts.l1d_mpki + counts.l1i_mpki + 1e-9


class TestTiming:
    def test_deterministic_cycles_formula(self, machine, exe):
        counts = machine._oracle_counts(exe)
        spec = exe.spec
        timing = TimingParameters()
        cycles = deterministic_cycles(counts, spec, timing)
        floor = counts.instructions * spec.intrinsic_cpi
        assert cycles >= floor
        # Remove branch penalty -> fewer cycles.
        no_branch = TimingParameters(mispredict_penalty=0.0)
        assert deterministic_cycles(counts, spec, no_branch) < cycles

    def test_noise_reproducible(self):
        noise = NoiseParameters()
        a = noisy_cycles(1e6, machine_seed=1, core=0, run_key="k", noise=noise)
        b = noisy_cycles(1e6, machine_seed=1, core=0, run_key="k", noise=noise)
        assert a == b

    def test_noise_varies_by_run_key(self):
        noise = NoiseParameters()
        values = {
            noisy_cycles(1e6, machine_seed=1, core=0, run_key=f"k{i}", noise=noise)
            for i in range(10)
        }
        assert len(values) == 10

    def test_noise_small(self):
        noise = NoiseParameters()
        for i in range(20):
            value = noisy_cycles(1e6, 1, 0, f"r{i}", noise)
            assert abs(value - 1e6) / 1e6 < 0.05

    def test_core_offsets_differ(self):
        noise = NoiseParameters()
        offsets = {core_frequency_offset(1, core, noise) for core in range(8)}
        assert len(offsets) == 8

    def test_jittered_count_near_value(self):
        noise = NoiseParameters()
        for i in range(20):
            value = jittered_count(10_000, 1, f"r{i}", "EV", noise)
            assert abs(value - 10_000) <= 100

    def test_jitter_zero_passthrough(self):
        noise = NoiseParameters(counter_jitter=0.0)
        assert jittered_count(1234, 1, "k", "EV", noise) == 1234


class TestRunOnce:
    def test_fixed_counters_always_present(self, machine, exe):
        reading = machine.run_once(exe)
        assert Counter.CYCLES in reading
        assert Counter.INSTRUCTIONS in reading

    def test_two_programmable_events(self, machine, exe):
        reading = machine.run_once(
            exe, [Counter.BRANCH_MISPREDICTS, Counter.L2_MISSES]
        )
        assert Counter.BRANCH_MISPREDICTS in reading
        assert Counter.L2_MISSES in reading

    def test_three_programmable_rejected(self, machine, exe):
        with pytest.raises(MeasurementError):
            machine.run_once(
                exe,
                [Counter.BRANCH_MISPREDICTS, Counter.L2_MISSES, Counter.L1I_MISSES],
            )

    def test_fixed_events_do_not_consume_slots(self, machine, exe):
        reading = machine.run_once(
            exe,
            [Counter.CYCLES, Counter.INSTRUCTIONS, Counter.BRANCH_MISPREDICTS,
             Counter.L2_MISSES],
        )
        assert Counter.BRANCH_MISPREDICTS in reading

    def test_invalid_core(self, machine, exe):
        with pytest.raises(MeasurementError):
            machine.run_once(exe, core=99)

    def test_counter_matches_oracle(self, machine, exe):
        counts = machine._oracle_counts(exe)
        reading = machine.run_once(exe, [Counter.BRANCHES])
        # BRANCHES has jitter disabled? No - jitter applies; allow 1%.
        assert reading[Counter.BRANCHES] == pytest.approx(counts.branches, rel=0.01)

    def test_instructions_exact(self, machine, exe):
        counts = machine._oracle_counts(exe)
        assert machine.run_once(exe)[Counter.INSTRUCTIONS] == counts.instructions


class TestCounterGroups:
    def test_plan_packs_pairs(self):
        plan = CounterGroupPlan.for_events(PAPER_EVENTS)
        assert all(len(group) <= 2 for group in plan.groups)
        assert sum(len(g) for g in plan.groups) == len(PAPER_EVENTS)
        assert plan.n_runs == 5 * len(plan.groups)

    def test_plan_rejects_duplicates(self):
        with pytest.raises(MeasurementError):
            CounterGroupPlan.for_events(
                [Counter.L2_MISSES, Counter.L2_MISSES]
            )

    def test_plan_rejects_fixed_only(self):
        with pytest.raises(MeasurementError):
            CounterGroupPlan.for_events([Counter.CYCLES])


class TestMeasurement:
    def test_all_events_collected(self, machine, exe):
        measurement = measure_executable(machine, exe)
        for event in PAPER_EVENTS:
            assert measurement[event] >= 0
        assert measurement.cycles > 0
        assert measurement.instructions > 0

    def test_derived_metrics(self, machine, exe):
        measurement = measure_executable(machine, exe)
        assert measurement.cpi == pytest.approx(
            units.cpi(measurement.cycles, measurement.instructions)
        )
        assert measurement.mpki >= 0.0

    def test_missing_event_raises(self, machine, exe):
        measurement = measure_executable(
            machine, exe, events=[Counter.BRANCH_MISPREDICTS]
        )
        with pytest.raises(MeasurementError):
            measurement[Counter.L2_MISSES]

    def test_measurement_reproducible(self, machine, exe):
        a = measure_executable(machine, exe)
        b = measure_executable(machine, exe)
        assert dict(a.counters) == dict(b.counters)

    def test_median_of_five_rejects_spikes(self, camino, tiny_spec, tiny_trace):
        """Median-of-5 cycles should be less variable than single runs."""
        spiky = XeonE5440Config(
            noise=NoiseParameters(spike_probability=0.3, spike_magnitude=0.1)
        )
        machine = XeonE5440(config=spiky, seed=3)
        exe = camino.build(tiny_spec, tiny_trace, layout_seed=1)
        counts = machine._oracle_counts(exe)
        spec = exe.spec
        det = deterministic_cycles(counts, spec, spiky.timing)
        singles = [
            machine.run_once(exe, run_key=f"solo{i}")[Counter.CYCLES]
            for i in range(40)
        ]
        median_err = abs(
            measure_executable(machine, exe, events=[Counter.BRANCHES]).cycles - det
        )
        single_errs = np.abs(np.array(singles) - det)
        # The median-run error should beat the *average* single-run error.
        assert median_err <= np.mean(single_errs)

    def test_perfex_wrapper(self, machine, exe):
        perfex = PerfEx(machine)
        reading = perfex(exe, [Counter.BRANCH_MISPREDICTS])
        assert Counter.BRANCH_MISPREDICTS in reading

    def test_bad_runs_per_group(self, machine, exe):
        with pytest.raises(MeasurementError):
            measure_executable(machine, exe, runs_per_group=0)
