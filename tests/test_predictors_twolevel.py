"""Tests for gshare, GAs, PAs, hybrid, and perceptron predictors."""

from __future__ import annotations

import numpy as np
import pytest

from repro.uarch.predictors.bimodal import BimodalPredictor
from repro.uarch.predictors.gas import GAsPredictor, gas_family, gas_hybrid_family
from repro.uarch.predictors.gshare import GsharePredictor
from repro.uarch.predictors.hybrid import HybridPredictor
from repro.uarch.predictors.pas import PAsPredictor
from repro.uarch.predictors.perceptron import PerceptronPredictor


def _pattern_stream(pattern, repeats, pc=0x400040):
    outcomes = np.array(list(pattern) * repeats, dtype=np.uint8)
    addresses = np.full(outcomes.shape, pc, dtype=np.int64)
    return addresses, outcomes


def _scalar_equals_batch(predictor_factory, n=400, seed=0):
    rng = np.random.default_rng(seed)
    outcomes = (rng.random(n) < 0.6).astype(np.uint8)
    addresses = rng.integers(0x400000, 0x408000, n)
    predictor = predictor_factory()
    batch = predictor.simulate(addresses, outcomes)
    scalar_predictor = predictor_factory()
    scalar_predictor.reset()
    scalar = sum(
        0 if scalar_predictor.predict_and_update(int(pc), int(outcome)) else 1
        for pc, outcome in zip(addresses, outcomes)
    )
    assert batch == scalar


class TestGshare:
    def test_learns_repeating_pattern(self):
        addresses, outcomes = _pattern_stream([1, 1, 0, 0], 200)
        misses = GsharePredictor(entries=4096, history_bits=6).simulate(
            addresses, outcomes
        )
        # After training, the 4-period pattern is fully captured.
        assert misses < 40

    def test_bimodal_cannot_learn_it(self):
        addresses, outcomes = _pattern_stream([1, 1, 0, 0], 200)
        gshare = GsharePredictor(entries=4096, history_bits=6).simulate(
            addresses, outcomes
        )
        bimodal = BimodalPredictor(entries=4096).simulate(addresses, outcomes)
        assert gshare < bimodal / 3

    def test_scalar_equals_batch(self):
        _scalar_equals_batch(lambda: GsharePredictor(entries=512, history_bits=5))

    def test_history_bits_bounds(self):
        with pytest.raises(ValueError):
            GsharePredictor(history_bits=0)

    def test_storage_bits(self):
        assert GsharePredictor(entries=1024, history_bits=8).storage_bits() == 2056


class TestGAs:
    def test_learns_pattern(self):
        addresses, outcomes = _pattern_stream([1, 0, 1, 1], 200)
        misses = GAsPredictor(entries=4096, history_bits=6).simulate(addresses, outcomes)
        assert misses < 40

    def test_scalar_equals_batch(self):
        _scalar_equals_batch(lambda: GAsPredictor(entries=1024, history_bits=4))

    def test_history_exceeding_index_rejected(self):
        with pytest.raises(ValueError):
            GAsPredictor(entries=256, history_bits=10)

    def test_family_names_and_sizes(self):
        family = gas_family()
        assert [p.name for p in family] == ["GAs-2KB", "GAs-4KB", "GAs-8KB", "GAs-16KB"]
        sizes = [p.storage_bits() for p in family]
        assert sizes == sorted(sizes)

    def test_hybrid_family_budget_monotone(self):
        family = gas_hybrid_family()
        sizes = [p.storage_bits() for p in family]
        assert sizes == sorted(sizes)
        assert [p.name for p in family] == ["GAs-2KB", "GAs-4KB", "GAs-8KB", "GAs-16KB"]


class TestPAs:
    def test_learns_local_loop_among_noise(self):
        """PAs captures a per-branch loop pattern even when another
        branch pollutes global history."""
        rng = np.random.default_rng(5)
        n = 1000
        outcomes = np.empty(n, dtype=np.uint8)
        addresses = np.empty(n, dtype=np.int64)
        # Interleave: loop branch (period 4) and a random branch.
        loop = ([1, 1, 1, 0] * (n // 8 + 1))[: n // 2]
        outcomes[0::2] = loop
        outcomes[1::2] = (rng.random(n // 2) < 0.5).astype(np.uint8)
        addresses[0::2] = 0x1000
        addresses[1::2] = 0x2000
        pas = PAsPredictor(bht_entries=256, pht_entries=8192, history_bits=8)
        misses = pas.simulate(addresses, outcomes)
        # The loop half should be almost perfectly predicted; the random
        # half costs ~50%.
        assert misses < n // 2 * 0.62

    def test_scalar_equals_batch(self):
        _scalar_equals_batch(
            lambda: PAsPredictor(bht_entries=128, pht_entries=2048, history_bits=5)
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            PAsPredictor(pht_entries=256, history_bits=10)


class TestHybrid:
    def test_beats_components_on_mixed_workload(self):
        rng = np.random.default_rng(6)
        n = 2000
        outcomes = np.empty(n, dtype=np.uint8)
        addresses = np.empty(n, dtype=np.int64)
        # Branch A: biased (bimodal-friendly); branch B: pattern
        # (global-history-friendly).
        outcomes[0::2] = (rng.random(n // 2) < 0.98).astype(np.uint8)
        pattern = ([1, 0, 0, 1] * (n // 8 + 1))[: n // 2]
        outcomes[1::2] = pattern
        addresses[0::2] = 0x1000
        addresses[1::2] = 0x2000
        hybrid = HybridPredictor(1024, 4096, 8, 1024).simulate(addresses, outcomes)
        bimodal_only = BimodalPredictor(1024).simulate(addresses, outcomes)
        assert hybrid < bimodal_only

    def test_scalar_equals_batch(self):
        _scalar_equals_batch(lambda: HybridPredictor(256, 1024, 6, 256))

    def test_reset_restores_state(self):
        rng = np.random.default_rng(7)
        outcomes = (rng.random(300) < 0.7).astype(np.uint8)
        addresses = rng.integers(0x400000, 0x404000, 300)
        predictor = HybridPredictor(256, 1024, 6, 256)
        first = predictor.simulate(addresses, outcomes)
        second = predictor.simulate(addresses, outcomes)
        assert first == second  # simulate resets internally


class TestPerceptron:
    def test_learns_linearly_separable_pattern(self):
        addresses, outcomes = _pattern_stream([1, 0], 300)
        misses = PerceptronPredictor(entries=64, history_bits=8).simulate(
            addresses, outcomes
        )
        assert misses < 30

    def test_learns_bias(self):
        addresses, outcomes = _pattern_stream([1], 300)
        misses = PerceptronPredictor(entries=64, history_bits=8).simulate(
            addresses, outcomes
        )
        assert misses < 5

    def test_threshold_formula(self):
        predictor = PerceptronPredictor(history_bits=16)
        assert predictor.threshold == int(1.93 * 16 + 14)

    def test_weights_bounded(self):
        addresses, outcomes = _pattern_stream([1], 2000)
        predictor = PerceptronPredictor(entries=16, history_bits=4)
        predictor.simulate(addresses, outcomes)
        for weights in predictor._weights:
            assert all(abs(w) <= predictor.weight_limit for w in weights)
