"""Tests for the set-associative caches and hierarchy."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.uarch.caches import CacheConfig, CacheHierarchy, SetAssociativeCache


def _reference_lru_misses(addresses, n_sets, assoc, block=64):
    """Straightforward reference LRU simulation."""
    sets = {}
    misses = 0
    for addr in addresses:
        blk = addr // block
        idx = blk % n_sets
        tag = blk // n_sets
        ways = sets.setdefault(idx, [])
        if tag in ways:
            ways.remove(tag)
            ways.insert(0, tag)
        else:
            misses += 1
            ways.insert(0, tag)
            if len(ways) > assoc:
                ways.pop()
    return misses


class TestConfig:
    def test_n_sets(self):
        config = CacheConfig(size_bytes=32 * 1024, block_bytes=64, associativity=8)
        assert config.n_sets == 64

    def test_non_power_of_two_size(self):
        with pytest.raises(ConfigurationError):
            CacheConfig(size_bytes=3000)

    def test_indivisible_geometry(self):
        with pytest.raises(ConfigurationError):
            CacheConfig(size_bytes=1024, block_bytes=64, associativity=32)

    def test_block_shift(self):
        assert CacheConfig(size_bytes=4096, block_bytes=64, associativity=1).block_shift == 6


class TestSingleLevel:
    def test_cold_misses(self):
        cache = SetAssociativeCache(CacheConfig(4096, 64, 2))
        addresses = np.arange(0, 10 * 64, 64, dtype=np.int64)
        assert cache.simulate(addresses) == 10

    def test_repeat_hits(self):
        cache = SetAssociativeCache(CacheConfig(4096, 64, 2))
        addresses = np.array([0, 0, 0, 64, 64], dtype=np.int64)
        assert cache.simulate(addresses) == 2

    def test_same_block_different_offset_hits(self):
        cache = SetAssociativeCache(CacheConfig(4096, 64, 2))
        addresses = np.array([0, 8, 56], dtype=np.int64)
        assert cache.simulate(addresses) == 1

    def test_direct_mapped_conflict(self):
        # 2 sets, direct-mapped, 64B blocks: addresses 0 and 128 share set 0.
        cache = SetAssociativeCache(CacheConfig(128, 64, 1))
        addresses = np.array([0, 128, 0, 128], dtype=np.int64)
        assert cache.simulate(addresses) == 4

    def test_associativity_absorbs_conflict(self):
        # Same two blocks but 2-way: both fit.
        cache = SetAssociativeCache(CacheConfig(256, 64, 2))
        addresses = np.array([0, 256, 0, 256], dtype=np.int64)
        assert cache.simulate(addresses) == 2

    def test_lru_eviction_order(self):
        # 1 set, 2 ways: A B C evicts A; touching A again misses, B hits? No:
        # A B C -> evict A (LRU). Then B hits, A misses.
        cache = SetAssociativeCache(CacheConfig(128, 64, 2))
        a, b, c = 0, 128, 256
        addresses = np.array([a, b, c, b, a], dtype=np.int64)
        mask = cache.simulate_mask(addresses)
        assert list(mask) == [True, True, True, False, True]

    def test_matches_reference_on_random_stream(self):
        rng = np.random.default_rng(0)
        addresses = rng.integers(0, 1 << 16, 3000)
        config = CacheConfig(8192, 64, 4)
        ours = SetAssociativeCache(config).simulate(addresses)
        reference = _reference_lru_misses(addresses, config.n_sets, 4)
        assert ours == reference

    def test_scalar_access_interface(self):
        cache = SetAssociativeCache(CacheConfig(4096, 64, 2))
        assert cache.access(0) is True
        assert cache.access(0) is False
        assert cache.access(32) is False  # same block

    def test_reset_empties(self):
        cache = SetAssociativeCache(CacheConfig(4096, 64, 2))
        cache.access(0)
        cache.reset()
        assert cache.access(0) is True


class TestHierarchy:
    def _hierarchy(self):
        return CacheHierarchy(
            l1i=CacheConfig(1024, 64, 2, name="l1i"),
            l1d=CacheConfig(1024, 64, 2, name="l1d"),
            l2=CacheConfig(4096, 64, 4, name="l2"),
        )

    def test_counts_consistent(self):
        rng = np.random.default_rng(1)
        n = 500
        i_addr = rng.integers(0x400000, 0x402000, n)
        d_addr = rng.integers(0x100000, 0x110000, n)
        events = np.arange(n, dtype=np.int64)
        counts = self._hierarchy().simulate(i_addr, events, d_addr, events)
        assert counts.l1i_accesses == n
        assert counts.l1d_accesses == n
        assert counts.l2_accesses == counts.l1i_misses + counts.l1d_misses
        assert counts.l2_misses <= counts.l2_accesses

    def test_l2_absorbs_l1_conflicts(self):
        # Two blocks conflicting in a 2-way L1 set both fit in the larger L2.
        n = 400
        i_addr = np.full(n, 0x400000, dtype=np.int64)
        blocks = np.array([0x0, 0x400, 0x800], dtype=np.int64)
        d_addr = np.tile(blocks, n // 3 + 1)[:n] + 0x100000
        events = np.arange(n, dtype=np.int64)
        counts = self._hierarchy().simulate(i_addr, events, d_addr, events)
        assert counts.l1d_misses > n // 2  # 3 blocks thrash the 2-way set
        assert counts.l2_misses <= 10  # but all fit in the 4-way L2

    def test_warmup_window_counts(self):
        rng = np.random.default_rng(2)
        n = 300
        i_addr = rng.integers(0x400000, 0x402000, n)
        d_addr = rng.integers(0x100000, 0x110000, n)
        events = np.arange(n, dtype=np.int64)
        full = self._hierarchy().simulate(i_addr, events, d_addr, events)
        windowed = self._hierarchy().simulate(
            i_addr, events, d_addr, events, warmup_event=100
        )
        assert windowed.l1i_accesses == n - 100
        assert windowed.l1i_misses <= full.l1i_misses
        assert windowed.l1d_misses <= full.l1d_misses

    def test_empty_data_stream(self):
        i_addr = np.array([0x400000, 0x400040], dtype=np.int64)
        events = np.array([0, 1], dtype=np.int64)
        empty = np.array([], dtype=np.int64)
        counts = self._hierarchy().simulate(i_addr, events, empty, empty)
        assert counts.l1d_accesses == 0
        assert counts.l1i_misses == 2


@given(
    seed=st.integers(min_value=0, max_value=1000),
    assoc=st.sampled_from([1, 2, 4, 8]),
)
@settings(max_examples=25, deadline=None)
def test_property_matches_reference(seed, assoc):
    rng = np.random.default_rng(seed)
    addresses = rng.integers(0, 1 << 14, 400)
    config = CacheConfig(4096, 64, assoc)
    ours = SetAssociativeCache(config).simulate(addresses)
    assert ours == _reference_lru_misses(addresses, config.n_sets, assoc)


@given(seed=st.integers(min_value=0, max_value=1000))
@settings(max_examples=25, deadline=None)
def test_property_bigger_cache_never_worse(seed):
    """LRU caches have the inclusion property: more ways, fewer misses."""
    rng = np.random.default_rng(seed)
    addresses = rng.integers(0, 1 << 13, 500)
    small = SetAssociativeCache(CacheConfig(1024, 64, 2)).simulate(addresses)
    # Same sets, more ways (true-LRU stack property applies per set).
    big = SetAssociativeCache(CacheConfig(2048, 64, 4)).simulate(addresses)
    assert big <= small


class TestSkewedAssociative:
    def _config(self):
        return CacheConfig(4096, 64, 4, name="skewed")

    def test_repeat_hits(self):
        from repro.uarch.caches import SkewedAssociativeCache

        cache = SkewedAssociativeCache(self._config())
        addresses = np.array([0, 0, 64, 64, 0], dtype=np.int64)
        assert cache.simulate(addresses) == 2

    def test_masks_pathological_stride(self):
        """Blocks that all map to one set of a set-associative cache
        spread across sets under skewing."""
        from repro.uarch.caches import SkewedAssociativeCache

        config = CacheConfig(4096, 64, 4)
        # 12 blocks, all congruent modulo the 16-set x 64B period.
        addresses = np.tile(
            np.arange(12, dtype=np.int64) * (16 * 64), 30
        )
        set_assoc = SetAssociativeCache(config).simulate(addresses)
        skewed = SkewedAssociativeCache(config).simulate(addresses)
        assert set_assoc > 300      # 4-way set thrashes on 12 conflicting blocks
        assert skewed < set_assoc / 3

    def test_capacity_still_limits(self):
        from repro.uarch.caches import SkewedAssociativeCache

        cache = SkewedAssociativeCache(self._config())
        # Far more blocks than the cache holds: most accesses miss.
        addresses = np.tile(np.arange(256, dtype=np.int64) * 64, 4)
        misses = cache.simulate(addresses)
        assert misses > 512

    def test_scalar_matches_bulk(self):
        from repro.uarch.caches import SkewedAssociativeCache

        rng = np.random.default_rng(5)
        addresses = rng.integers(0, 1 << 14, 500)
        bulk = SkewedAssociativeCache(self._config()).simulate(addresses)
        scalar_cache = SkewedAssociativeCache(self._config())
        scalar = sum(scalar_cache.access(int(a)) for a in addresses)
        assert bulk == scalar

    @pytest.mark.parametrize("assoc", [2, 4])
    def test_engines_bit_identical(self, assoc):
        """The engine knob selects an implementation, not semantics:
        identical miss counts and identical post-run way/victim state."""
        from repro.uarch.caches import SkewedAssociativeCache

        rng = np.random.default_rng(11)
        addresses = rng.integers(0, 1 << 15, 700)
        config = CacheConfig(4096, 64, assoc, name="skewed")
        scalar = SkewedAssociativeCache(config)
        vectored = SkewedAssociativeCache(config)
        misses_s = scalar.simulate(addresses, engine="scalar")
        misses_v = vectored.simulate(addresses, engine="vector")
        assert misses_s == misses_v
        assert scalar._ways == vectored._ways
        assert scalar._victim == vectored._victim

    def test_rejects_unknown_engine(self):
        from repro.uarch.caches import SkewedAssociativeCache

        cache = SkewedAssociativeCache(self._config())
        with pytest.raises(ConfigurationError):
            cache.simulate(np.array([0], dtype=np.int64), engine="warp")

    def test_needs_two_ways(self):
        from repro.uarch.caches import SkewedAssociativeCache

        with pytest.raises(ConfigurationError):
            SkewedAssociativeCache(CacheConfig(4096, 64, 1))
