"""Shared fixtures.

Expensive artifacts (benchmarks, traces, the laboratory) are session
scoped: the underlying objects are deterministic and immutable-by-
convention, so sharing them across tests is safe and keeps the suite
fast.
"""

from __future__ import annotations

import pytest

from repro.harness.lab import Laboratory, Scale
from repro.lint.sanitizer import DeterminismSanitizer, sanitize_requested
from repro.machine.system import XeonE5440
from repro.program.behavior import BiasedBehavior, LoopBehavior
from repro.program.structure import (
    BranchSite,
    DataRefSpec,
    HeapObjectSpec,
    ProcedureSpec,
    ProgramSpec,
    SourceFile,
)
from repro.program.tracegen import generate_trace
from repro.toolchain.camino import Camino
from repro.workloads.suite import get_benchmark

@pytest.fixture(scope="session", autouse=True)
def determinism_sanitizer():
    """Run the whole suite sanitized when ``REPRO_SANITIZE=1``.

    Any repro-library frame that reaches for global RNG state, the
    wall clock, or an unsorted directory scan raises
    :class:`~repro.errors.DeterminismViolation` on the spot; test and
    third-party frames are exempt.
    """
    if sanitize_requested():
        with DeterminismSanitizer():
            yield
    else:
        yield


#: Test-tier scale: small enough for CI, big enough for significance.
TEST_SCALE = Scale(
    name="test",
    n_layouts=8,
    trace_events=6000,
    mase_trace_events=2500,
    mase_configs=21,
    ltage_layouts=4,
)


def make_tiny_spec(
    name: str = "tiny",
    n_procs: int = 6,
    sites_per_proc: int = 3,
    with_heap: bool = True,
) -> ProgramSpec:
    """A small hand-rolled program for unit tests."""
    heap_objects = (
        (
            HeapObjectSpec(name="table", size_bytes=6144),
            HeapObjectSpec(name="buffer", size_bytes=3072),
        )
        if with_heap
        else ()
    )
    procedures = []
    for p in range(n_procs):
        sites = []
        for s in range(sites_per_proc):
            behavior = (
                LoopBehavior(trip_count=4)
                if (p + s) % 3 == 0
                else BiasedBehavior(0.9 if s % 2 == 0 else 0.2)
            )
            refs = ()
            if with_heap and s == 0:
                refs = (
                    DataRefSpec(
                        object_name="table", mode="stride", stride=64, span=4096
                    ),
                )
            sites.append(
                BranchSite(
                    name=f"b{p}_{s}",
                    offset=32 + s * 48,
                    behavior=behavior,
                    instr_gap=5,
                    data_refs=refs,
                )
            )
        procedures.append(
            ProcedureSpec(name=f"p{p}", sites=tuple(sites), weight=1.0 + p)
        )
    files = (
        SourceFile(name="a.o", procedure_names=tuple(f"p{i}" for i in range(n_procs // 2))),
        SourceFile(
            name="b.o",
            procedure_names=tuple(f"p{i}" for i in range(n_procs // 2, n_procs)),
        ),
    )
    return ProgramSpec(
        name=name, procedures=tuple(procedures), files=files, heap_objects=heap_objects
    )


@pytest.fixture(scope="session")
def tiny_spec() -> ProgramSpec:
    """A small deterministic program."""
    return make_tiny_spec()


@pytest.fixture(scope="session")
def tiny_trace(tiny_spec):
    """A short canonical trace of the tiny program."""
    return generate_trace(tiny_spec, seed=42, n_events=1200)


@pytest.fixture(scope="session")
def camino() -> Camino:
    """A default toolchain."""
    return Camino()


@pytest.fixture(scope="session")
def machine() -> XeonE5440:
    """A default reference machine."""
    return XeonE5440(seed=7)


@pytest.fixture(scope="session")
def lab() -> Laboratory:
    """A shared laboratory at test scale (cached campaigns)."""
    return Laboratory(scale=TEST_SCALE, machine_seed=7)


@pytest.fixture(scope="session")
def perlbench():
    """The perlbench benchmark object."""
    return get_benchmark("400.perlbench")
