"""Whole-program analysis layer of ``repro.lint``.

Covers the project symbol table and call graph
(:mod:`repro.lint.callgraph`), the seed-taint dataflow core
(:mod:`repro.lint.dataflow`), the CLI surface added for
interprocedural linting (``--graph``, repeatable ``--rule``), baseline
rule-set staleness detection, and a hypothesis-driven corpus of
generated seeded/unseeded call chains asserting SEED001's contract:
no false negatives on severed chains, no false positives on threaded
ones.
"""

from __future__ import annotations

import ast
import json
import tempfile
from pathlib import Path

import pytest

from repro.errors import LintUsageError
from repro.lint import Baseline, LintEngine
from repro.lint.callgraph import CallGraph, Program, module_name
from repro.lint.cli import main as lint_main
from repro.lint.dataflow import (
    FunctionDataflow,
    Taint,
    argument_for_param,
    is_seed_name,
    is_seed_root_name,
)
from repro.lint.rules import get_rules


def build_program(sources: dict[str, str]) -> Program:
    """Index ``{rel: source}`` into a Program without touching disk."""
    parsed = []
    for rel, source in sorted(sources.items()):
        parsed.append((rel, ast.parse(source), source.splitlines()))
    return Program.build(parsed)


def flow_of(source: str) -> FunctionDataflow:
    """Dataflow over the first function in *source*."""
    tree = ast.parse(source)
    node = next(
        n for n in ast.walk(tree)
        if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
    )
    return FunctionDataflow(node)


# ----------------------------------------------------------------------
# Symbol table and call graph.
# ----------------------------------------------------------------------


class TestModuleNaming:
    def test_src_anchor_stripped(self):
        assert module_name("src/repro/machine/pmc.py") == "repro.machine.pmc"

    def test_absolute_tmp_paths_still_anchor_on_src(self):
        assert (
            module_name("/tmp/x/src/repro/core/park.py") == "repro.core.park"
        )

    def test_tests_prefix_kept(self):
        assert module_name("tests/test_rng.py") == "tests.test_rng"

    def test_init_maps_to_package(self):
        assert module_name("src/repro/lint/__init__.py") == "repro.lint"

    def test_unanchored_falls_back_to_stem(self):
        assert module_name("scratch/tool.py") == "tool"


class TestCallResolution:
    SOURCES = {
        "src/repro/machine/engine.py": (
            "from repro.machine.pmc import read_counter\n"
            "class Machine:\n"
            "    def run(self, spec):\n"
            "        return self.step(spec)\n"
            "    def step(self, spec):\n"
            "        return read_counter(spec)\n"
            "def run_machine(machine, spec):\n"
            "    return machine.run(spec)\n"
        ),
        "src/repro/machine/pmc.py": (
            "def read_counter(spec):\n"
            "    return 0\n"
        ),
    }

    def test_imported_name_resolves_statically(self):
        program = build_program(self.SOURCES)
        graph = CallGraph(program)
        assert (
            "repro.machine.pmc.read_counter"
            in graph.edges["repro.machine.engine.Machine.step"]
        )

    def test_self_method_resolves_statically(self):
        program = build_program(self.SOURCES)
        graph = CallGraph(program)
        assert (
            "repro.machine.engine.Machine.step"
            in graph.edges["repro.machine.engine.Machine.run"]
        )

    def test_unknown_receiver_resolves_dynamically(self):
        program = build_program(self.SOURCES)
        graph = CallGraph(program)
        dynamic = graph.dynamic_edges.get("repro.machine.engine.run_machine", set())
        assert "repro.machine.engine.Machine.run" in dynamic
        assert "repro.machine.engine.run_machine" not in graph.edges

    def test_reachability_with_and_without_dynamic_edges(self):
        program = build_program(self.SOURCES)
        graph = CallGraph(program)
        with_dynamic = graph.reachable(
            ["repro.machine.engine.run_machine"], include_dynamic=True
        )
        assert "repro.machine.pmc.read_counter" in with_dynamic
        without = graph.reachable(
            ["repro.machine.engine.run_machine"], include_dynamic=False
        )
        assert "repro.machine.pmc.read_counter" not in without

    def test_render_is_deterministic_and_marks_dynamic(self):
        program = build_program(self.SOURCES)
        first = CallGraph(program).render()
        second = CallGraph(build_program(self.SOURCES)).render()
        assert first == second
        assert "->" in first
        assert "[dynamic]" in first

    def test_mro_walks_statically_resolvable_bases(self):
        program = build_program({
            "src/repro/machine/base.py": (
                "class Base:\n"
                "    def hook(self):\n"
                "        return 1\n"
            ),
            "src/repro/machine/derived.py": (
                "from repro.machine.base import Base\n"
                "class Derived(Base):\n"
                "    def run(self):\n"
                "        return self.hook()\n"
            ),
        })
        graph = CallGraph(program)
        assert (
            "repro.machine.base.Base.hook"
            in graph.edges["repro.machine.derived.Derived.run"]
        )


# ----------------------------------------------------------------------
# Seed-taint dataflow.
# ----------------------------------------------------------------------


class TestSeedNames:
    @pytest.mark.parametrize("name", ["seed", "seeds", "layout_seed",
                                      "heap_seeds", "_seed", "run_seed"])
    def test_seed_like(self, name):
        assert is_seed_name(name)

    @pytest.mark.parametrize("name", ["seedling", "x", "rng", "seeded",
                                      "proceed"])
    def test_not_seed_like(self, name):
        assert not is_seed_name(name)

    @pytest.mark.parametrize("name", ["MASTER_SEED", "LAYOUT_SEED_BASE",
                                      "_SEED", "SEED"])
    def test_root_constants(self, name):
        assert is_seed_root_name(name)


class TestTaint:
    def test_constant_expressions(self):
        flow = flow_of("def f(seed):\n    x = 1 + 2\n    return x\n")
        assert flow.taint_of(ast.parse("41 + 1", mode="eval").body) is Taint.CONSTANT

    def test_seed_param_is_seeded(self):
        flow = flow_of("def f(seed):\n    return seed\n")
        expr = ast.parse("seed", mode="eval").body
        assert flow.taint_of(expr) is Taint.SEEDED

    def test_derive_seed_propagates(self):
        flow = flow_of(
            "def f(seed):\n"
            "    child = derive_seed(seed, 'x')\n"
            "    return child\n"
        )
        expr = ast.parse("child", mode="eval").body
        assert flow.taint_of(expr) is Taint.SEEDED

    def test_derive_seed_of_constants_is_constant(self):
        flow = flow_of("def f():\n    return 0\n")
        expr = ast.parse("derive_seed(1, 'x')", mode="eval").body
        assert flow.taint_of(expr) is Taint.CONSTANT

    def test_unknown_call_is_unknown(self):
        flow = flow_of("def f(seed):\n    return 0\n")
        expr = ast.parse("mystery()", mode="eval").body
        assert flow.taint_of(expr) is Taint.UNKNOWN

    def test_cyclic_locals_do_not_recurse_forever(self):
        flow = flow_of("def f():\n    a = b\n    b = a\n    return a\n")
        expr = ast.parse("a", mode="eval").body
        assert flow.taint_of(expr) is Taint.UNKNOWN

    def test_shadowing_store_detected(self):
        flow = flow_of("def f(seed):\n    seed = 99\n    return seed\n")
        assert len(list(flow.shadowing_stores("seed"))) == 1

    def test_self_referential_refinement_is_not_shadowing(self):
        flow = flow_of(
            "def f(seed):\n"
            "    seed = seed & 0xFFFF\n"
            "    return seed\n"
        )
        assert list(flow.shadowing_stores("seed")) == []


class TestArgumentBinding:
    CALL = ast.parse("g(1, 2, key=3)", mode="eval").body

    def test_positional(self):
        arg = argument_for_param(self.CALL, ["a", "b", "key"], "b")
        assert isinstance(arg, ast.Constant) and arg.value == 2

    def test_keyword(self):
        arg = argument_for_param(self.CALL, ["a", "b", "key"], "key")
        assert isinstance(arg, ast.Constant) and arg.value == 3

    def test_missing_is_none(self):
        assert argument_for_param(self.CALL, ["a", "b", "key", "z"], "z") is None

    def test_star_args_defeat_binding(self):
        call = ast.parse("g(*xs, 2)", mode="eval").body
        assert argument_for_param(call, ["a", "b"], "b") is None


# ----------------------------------------------------------------------
# CLI: --graph, --rule, baseline staleness, --json rule_set.
# ----------------------------------------------------------------------


def run_cli(*argv):
    import contextlib
    import io

    out, err = io.StringIO(), io.StringIO()
    with contextlib.redirect_stdout(out), contextlib.redirect_stderr(err):
        code = lint_main(list(argv))
    return code, out.getvalue(), err.getvalue()


def write_tree(tmp_path: Path, files: dict[str, str]) -> Path:
    for rel, source in files.items():
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source)
    return tmp_path


class TestCliSurface:
    CHAIN = {
        "src/repro/machine/worker.py":
            "from repro.rng import RandomStream\n"
            "def simulate(run_seed):\n"
            "    return RandomStream(run_seed)\n",
        "src/repro/machine/driver.py":
            "from repro.machine.worker import simulate\n"
            "def drive(seed):\n"
            "    return simulate(seed)\n",
    }

    def test_graph_dumps_edges_and_exits_zero(self, tmp_path):
        root = write_tree(tmp_path, self.CHAIN)
        code, out, _ = run_cli("--graph", str(root))
        assert code == 0
        assert (
            "repro.machine.driver.drive -> repro.machine.worker.simulate"
            in out
        )
        assert out.strip().splitlines()[-1].startswith("#")

    def test_graph_is_deterministic(self, tmp_path):
        root = write_tree(tmp_path, self.CHAIN)
        _, first, _ = run_cli("--graph", str(root))
        _, second, _ = run_cli("--graph", str(root))
        assert first == second

    def test_repeatable_rule_flag_filters(self, tmp_path):
        root = write_tree(tmp_path, {
            "src/repro/machine/mod.py":
                "import random\n"
                "def build(seed):\n"
                "    return random.random()\n",
        })
        # DET001 only: the dropped seed is SEED001's to report.
        code, out, _ = run_cli("--rule", "DET001", str(root))
        assert code == 1
        assert "DET001" in out and "SEED001" not in out
        # Merged with --rules, both fire.
        code, out, _ = run_cli(
            "--rules", "DET001", "--rule", "SEED001", str(root)
        )
        assert code == 1
        assert "DET001" in out and "SEED001" in out

    def test_json_rule_set_reflects_rule_filter(self, tmp_path):
        root = write_tree(tmp_path, {"src/repro/machine/mod.py": "x = 1\n"})
        code, out, _ = run_cli("--rule", "SEED001", "--json", str(root))
        assert code == 0
        payload = json.loads(out)
        assert payload["version"] == 3
        assert payload["rule_set"] == ["SEED001"]

    def test_unknown_rule_flag_is_usage_error(self, tmp_path):
        code, _, err = run_cli("--rule", "NOPE999", str(tmp_path))
        assert code == 2
        assert "unknown rule" in err


class TestBaselineStaleness:
    def findings(self, tmp_path):
        root = write_tree(tmp_path, {
            "src/repro/machine/mod.py":
                "import random\n"
                "def f():\n"
                "    return random.random()\n",
        })
        return root, LintEngine().run([root]).findings

    def test_round_trip_with_matching_rules(self, tmp_path):
        root, findings = self.findings(tmp_path)
        path = tmp_path / "baseline.json"
        rules = [r.id for r in get_rules()]
        Baseline.write(path, findings, rules=rules)
        loaded = Baseline.load(path, expected_rules=rules)
        assert sum(loaded.counts.values()) == len(findings)
        assert loaded.rules == tuple(sorted(rules))

    def test_different_rule_set_is_stale(self, tmp_path):
        _, findings = self.findings(tmp_path)
        path = tmp_path / "baseline.json"
        Baseline.write(path, findings, rules=["DET001"])
        with pytest.raises(LintUsageError, match="stale baseline"):
            Baseline.load(
                path, expected_rules=[r.id for r in get_rules()]
            )

    def test_version1_file_predates_tracking(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 1, "entries": []}))
        # Legacy read without expectations still works…
        assert Baseline.load(path).rules is None
        # …but the CLI's strict load rejects it.
        with pytest.raises(LintUsageError, match="predates"):
            Baseline.load(path, expected_rules=["DET001"])

    def test_cli_rejects_stale_baseline(self, tmp_path):
        root, findings = self.findings(tmp_path)
        path = tmp_path / "baseline.json"
        Baseline.write(path, findings, rules=["DET001"])
        code, _, err = run_cli(str(root), "--baseline", str(path))
        assert code == 2
        assert "stale" in err

    def test_written_baseline_records_rule_set(self, tmp_path):
        root, findings = self.findings(tmp_path)
        path = tmp_path / "baseline.json"
        code, _, _ = run_cli(str(root), "--write-baseline", str(path))
        assert code == 0
        payload = json.loads(path.read_text())
        assert payload["version"] == 2
        assert payload["rules"] == sorted(r.id for r in get_rules())


# ----------------------------------------------------------------------
# Hypothesis corpus: generated call chains vs SEED001's contract.
# ----------------------------------------------------------------------

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402


def chain_sources(links: list[bool]) -> dict[str, str]:
    """A cross-module call chain; ``links[i]`` is True when function i
    threads its seed into function i+1, False when it passes a constant.

    The terminal function always builds its RNG from its parameter, so
    the only provenance breaks are the ones *links* injects.
    """
    n = len(links)
    files: dict[str, str] = {
        f"src/repro/machine/stage{n}.py": (
            "from repro.rng import RandomStream\n"
            f"def run{n}(seed):\n"
            "    return RandomStream(seed)\n"
        )
    }
    for i, threaded in enumerate(links):
        arg = f"derive_seed(seed, 'stage{i}')" if threaded else "0xBEEF"
        files[f"src/repro/machine/stage{i}.py"] = (
            f"from repro.machine.stage{i + 1} import run{i + 1}\n"
            "from repro.rng import derive_seed\n"
            f"def run{i}(seed):\n"
            f"    return run{i + 1}({arg})\n"
        )
    return files


@settings(derandomize=True, deadline=None, max_examples=30)
@given(links=st.lists(st.booleans(), min_size=1, max_size=4))
def test_seed001_corpus_no_false_verdicts(links):
    """SEED001 flags a generated chain iff a link passes a constant —
    every severed link is caught (no false negatives) and a fully
    threaded chain is clean (no false positives)."""
    with tempfile.TemporaryDirectory() as tmp:
        root = write_tree(Path(tmp), chain_sources(links))
        engine = LintEngine(rules=get_rules(["SEED001"]))
        result = engine.run([root])
    broken = {i for i, threaded in enumerate(links) if not threaded}
    if not broken:
        assert result.clean, [f.message for f in result.findings]
        return
    assert not result.clean
    flagged_stages = {
        f.path for f in result.findings if "not threaded" in f.message
    }
    assert flagged_stages == {
        (root / f"src/repro/machine/stage{i}.py").as_posix() for i in broken
    }
