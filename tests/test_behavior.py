"""Tests for branch behaviour models."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.program.behavior import (
    BiasedBehavior,
    GlobalCorrelatedBehavior,
    LoopBehavior,
    PatternBehavior,
)
from repro.rng import RandomStream


def _outcomes(behavior, n=1000, seed=0, history_fn=None):
    stream = RandomStream(seed)
    state = behavior.make_state()
    history = 0
    outcomes = []
    for _ in range(n):
        outcome = behavior.next_outcome(state, history, stream.uniform())
        outcomes.append(outcome)
        history = ((history << 1) | outcome) & 0xFFFF
    return outcomes


class TestBiased:
    def test_strong_taken_bias(self):
        outcomes = _outcomes(BiasedBehavior(0.9))
        assert 0.85 < sum(outcomes) / len(outcomes) < 0.95

    def test_strong_not_taken_bias(self):
        outcomes = _outcomes(BiasedBehavior(0.1))
        assert 0.05 < sum(outcomes) / len(outcomes) < 0.15

    def test_always_taken(self):
        assert all(_outcomes(BiasedBehavior(1.0), n=100))

    def test_never_taken(self):
        assert not any(_outcomes(BiasedBehavior(0.0), n=100))

    def test_invalid_probability(self):
        with pytest.raises(ConfigurationError):
            BiasedBehavior(1.5)
        with pytest.raises(ConfigurationError):
            BiasedBehavior(-0.1)

    def test_outcomes_binary(self):
        assert set(_outcomes(BiasedBehavior(0.5))) <= {0, 1}


class TestLoop:
    def test_exact_trip_pattern(self):
        outcomes = _outcomes(LoopBehavior(trip_count=4), n=12)
        # taken 3 times, not-taken once, repeating
        assert outcomes == [1, 1, 1, 0] * 3

    def test_trip_two(self):
        outcomes = _outcomes(LoopBehavior(trip_count=2), n=6)
        assert outcomes == [1, 0] * 3

    def test_exit_rate_matches_trip(self):
        outcomes = _outcomes(LoopBehavior(trip_count=10), n=1000)
        exits = outcomes.count(0)
        assert 90 <= exits <= 110

    def test_jitter_changes_some_trips(self):
        jittered = _outcomes(LoopBehavior(trip_count=4, jitter=0.5), n=400, seed=1)
        exact = [1, 1, 1, 0] * 100
        assert jittered != exact
        # Still loop-like: exits are rarer than iterations.
        assert jittered.count(0) < jittered.count(1)

    def test_trip_too_small(self):
        with pytest.raises(ConfigurationError):
            LoopBehavior(trip_count=1)

    def test_bad_jitter(self):
        with pytest.raises(ConfigurationError):
            LoopBehavior(trip_count=4, jitter=1.5)


class TestPattern:
    def test_repeats_exactly(self):
        outcomes = _outcomes(PatternBehavior((1, 0, 1, 1)), n=8)
        assert outcomes == [1, 0, 1, 1, 1, 0, 1, 1]

    def test_single_bit_pattern(self):
        assert _outcomes(PatternBehavior((1,)), n=5) == [1] * 5

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            PatternBehavior(())

    def test_non_binary_rejected(self):
        with pytest.raises(ConfigurationError):
            PatternBehavior((1, 2))

    def test_independent_states(self):
        behavior = PatternBehavior((1, 0))
        s1 = behavior.make_state()
        s2 = behavior.make_state()
        assert behavior.next_outcome(s1, 0, 0.0) == 1
        assert behavior.next_outcome(s1, 0, 0.0) == 0
        # Second state starts fresh.
        assert behavior.next_outcome(s2, 0, 0.0) == 1


class TestGlobalCorrelated:
    def test_noiseless_parity(self):
        behavior = GlobalCorrelatedBehavior(history_bits=(0,), noise=0.0)
        state = behavior.make_state()
        assert behavior.next_outcome(state, history=1, u=0.9) == 1
        assert behavior.next_outcome(state, history=0, u=0.9) == 0

    def test_two_bit_parity(self):
        behavior = GlobalCorrelatedBehavior(history_bits=(0, 1), noise=0.0)
        state = behavior.make_state()
        assert behavior.next_outcome(state, history=0b11, u=0.9) == 0
        assert behavior.next_outcome(state, history=0b01, u=0.9) == 1

    def test_invert(self):
        plain = GlobalCorrelatedBehavior(history_bits=(0,), noise=0.0)
        inverted = GlobalCorrelatedBehavior(history_bits=(0,), noise=0.0, invert=True)
        assert plain.next_outcome(None, 1, 0.9) != inverted.next_outcome(None, 1, 0.9)

    def test_noise_flips(self):
        behavior = GlobalCorrelatedBehavior(history_bits=(0,), noise=0.5)
        # u below noise threshold flips the parity.
        assert behavior.next_outcome(None, history=1, u=0.1) == 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            GlobalCorrelatedBehavior(history_bits=())
        with pytest.raises(ConfigurationError):
            GlobalCorrelatedBehavior(history_bits=(20,))
        with pytest.raises(ConfigurationError):
            GlobalCorrelatedBehavior(history_bits=(0,), noise=0.9)
