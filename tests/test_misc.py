"""Small-surface tests: errors, scale validation, timing coupling,
progress callbacks, and report rendering details."""

from __future__ import annotations

import pytest

from repro.core.interferometer import Interferometer
from repro.errors import (
    AllocationError,
    ConfigurationError,
    LinkError,
    MeasurementError,
    ModelError,
    ReproError,
    WorkloadError,
)
from repro.harness.lab import Scale
from repro.harness.report import format_cell, format_table
from repro.machine.config import TimingParameters, XeonE5440Config
from repro.machine.core_model import StructuralCounts
from repro.machine.timing import deterministic_cycles
from repro.workloads.suite import get_benchmark

from tests.conftest import make_tiny_spec


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            ConfigurationError,
            LinkError,
            AllocationError,
            MeasurementError,
            ModelError,
            WorkloadError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)
        with pytest.raises(ReproError):
            raise exc("boom")

    def test_catching_base_does_not_catch_programming_errors(self):
        with pytest.raises(TypeError):
            try:
                raise TypeError("not ours")
            except ReproError:  # pragma: no cover - must not trigger
                pass


class TestScaleValidation:
    def test_too_few_layouts_rejected(self):
        with pytest.raises(ConfigurationError):
            Scale("bad", n_layouts=2, trace_events=100, mase_trace_events=100,
                  mase_configs=None, ltage_layouts=1)

    def test_valid_scale(self):
        scale = Scale("ok", n_layouts=5, trace_events=100, mase_trace_events=100,
                      mase_configs=10, ltage_layouts=2)
        assert scale.name == "ok"


class TestTimingCoupling:
    def _counts(self, mispredicts, l1d_misses=500, l1d_accesses=1000):
        return StructuralCounts(
            instructions=100_000,
            branches=15_000,
            mispredicts=mispredicts,
            btb_misses=0,
            indirect_mispredicts=0,
            l1i_accesses=10_000,
            l1i_misses=0,
            l1d_accesses=l1d_accesses,
            l1d_misses=l1d_misses,
            l2_misses=0,
        )

    def test_coupling_term_superlinear_with_miss_rate(self):
        """The §3.1 interaction: the same misprediction count costs more
        when the data cache is missing more."""
        spec = make_tiny_spec()
        timing = TimingParameters(coupling_mpki_l1d=5.0)
        cold = deterministic_cycles(self._counts(1000, l1d_misses=900), spec, timing)
        warm = deterministic_cycles(self._counts(1000, l1d_misses=100), spec, timing)
        # Remove the direct l1d penalty difference to isolate coupling.
        direct = (900 - 100) * timing.l1d_penalty
        assert cold - warm > direct

    def test_no_coupling_when_disabled(self):
        spec = make_tiny_spec()
        timing = TimingParameters(coupling_mpki_l1d=0.0)
        a = deterministic_cycles(self._counts(1000, l1d_misses=900), spec, timing)
        b = deterministic_cycles(self._counts(1000, l1d_misses=100), spec, timing)
        assert a - b == pytest.approx(800 * timing.l1d_penalty)

    def test_negative_penalty_rejected(self):
        with pytest.raises(ConfigurationError):
            TimingParameters(l2_penalty=-1.0)

    def test_bad_warmup_fraction_rejected(self):
        with pytest.raises(ConfigurationError):
            XeonE5440Config(warmup_fraction=1.0)


class TestProgress:
    def test_observe_reports_progress(self, machine):
        interferometer = Interferometer(machine, trace_events=2000)
        seen = []
        interferometer.observe(
            get_benchmark("456.hmmer"),
            n_layouts=4,
            progress=lambda done, total: seen.append((done, total)),
        )
        assert seen == [(1, 4), (2, 4), (3, 4), (4, 4)]


class TestReportDetails:
    def test_format_cell_precision(self):
        assert format_cell(1.23456, precision=2) == "1.23"
        assert format_cell(7) == "7"
        assert format_cell(False) == "no"

    def test_table_right_alignment(self):
        text = format_table(["v"], [(1.5,), (22.5,)])
        lines = text.splitlines()
        assert lines[-1].endswith("22.500")
        assert lines[-2].endswith(" 1.500")
