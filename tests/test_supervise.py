"""Supervised execution: deadlines, circuit breaker, journal, shutdown.

The supervision layer decides *when and where* a campaign runs, never
*what* it measures, so every killed-and-retried, degraded, drained, or
resumed campaign must reproduce the exact bits a fault-free run would
have produced.  These tests assert that equality literally — including
across a ``kill -9`` and a ``--resume``.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import textwrap
import threading
import time
from pathlib import Path

import pytest

from repro import faults, telemetry
from repro.core.park import MachinePark
from repro.core.supervise import (
    DEFAULT_BREAKER_THRESHOLD,
    CircuitBreaker,
    ShutdownHandler,
    run_with_deadline,
)
from repro.errors import (
    CampaignTimeoutError,
    ConfigurationError,
    ShutdownRequested,
)
from repro.faults import FailureReport, FaultPlan, RetryPolicy
from repro.harness.lab import Laboratory
from repro.journal import JournalEntry, SuiteJournal

from tests.test_faults import TINY, assert_bit_identical, park  # noqa: F401


#: A hang long enough that any test deadline sees a genuine hang, short
#: enough that abandoned watchdog threads cannot outlive the test run.
HANG = 3.0
DEADLINE = 0.4


class TestRunWithDeadline:
    def test_no_deadline_is_a_plain_call(self):
        calls = []

        def fn():
            calls.append(threading.current_thread())
            return 42

        assert run_with_deadline(fn, None) == 42
        # Zero supervision overhead: same thread, no watchdog.
        assert calls == [threading.main_thread()]

    def test_returns_value_within_deadline(self):
        assert run_with_deadline(lambda: "ok", 30.0) == "ok"

    def test_propagates_error_within_deadline(self):
        def boom():
            raise ConfigurationError("inner failure")

        with pytest.raises(ConfigurationError, match="inner failure"):
            run_with_deadline(boom, 30.0)

    def test_expiry_raises_campaign_timeout(self):
        start = telemetry.tick_seconds()
        with pytest.raises(CampaignTimeoutError) as err:
            run_with_deadline(
                lambda: time.sleep(HANG), DEADLINE, describe="456.hmmer"
            )
        elapsed = telemetry.tick_seconds() - start
        assert DEADLINE <= elapsed < HANG
        assert err.value.benchmark == "456.hmmer"
        assert err.value.deadline_seconds == pytest.approx(DEADLINE)
        assert "deadline" in str(err.value)

    def test_invalid_deadline_rejected(self):
        with pytest.raises(ConfigurationError):
            run_with_deadline(lambda: 1, 0.0)
        with pytest.raises(ConfigurationError):
            run_with_deadline(lambda: 1, -3.0)


class TestCircuitBreaker:
    def test_trips_after_threshold_consecutive_failures(self):
        breaker = CircuitBreaker(threshold=3)
        assert not breaker.record_failure("crash a")
        assert not breaker.record_failure("crash b")
        assert breaker.record_failure("timeout c")
        assert breaker.tripped
        assert "3 consecutive" in breaker.reason
        assert "timeout c" in breaker.reason

    def test_success_resets_the_streak(self):
        breaker = CircuitBreaker(threshold=2)
        breaker.record_failure("x")
        breaker.record_success()
        assert not breaker.record_failure("y")
        assert breaker.record_failure("z")

    def test_stays_tripped(self):
        breaker = CircuitBreaker(threshold=1)
        breaker.record_failure("x")
        breaker.record_success()
        assert breaker.tripped

    def test_threshold_validated(self):
        with pytest.raises(ConfigurationError):
            CircuitBreaker(threshold=0)

    def test_default_threshold(self):
        assert CircuitBreaker().threshold == DEFAULT_BREAKER_THRESHOLD


class TestShutdownHandler:
    def test_programmatic_request_and_check(self):
        handler = ShutdownHandler()
        assert not handler.requested
        handler.check()  # no-op before a request
        handler.request("test")
        assert handler.requested
        with pytest.raises(ShutdownRequested) as err:
            handler.check()
        assert err.value.signal_name == "test"

    def test_first_signal_requests_drain(self):
        before = signal.getsignal(signal.SIGTERM)
        with ShutdownHandler() as handler:
            os.kill(os.getpid(), signal.SIGTERM)
            # Signal delivery happens at the next bytecode boundary.
            deadline = telemetry.tick_seconds() + 5.0
            while not handler.requested:
                assert telemetry.tick_seconds() < deadline
            assert handler.signal_name == "SIGTERM"
        # The previous handler is restored on exit.
        assert signal.getsignal(signal.SIGTERM) == before

    def test_second_signal_escalates(self):
        handler = ShutdownHandler()
        with handler:
            handler.request("SIGINT")
            with pytest.raises(KeyboardInterrupt):
                handler._handle(signal.SIGINT, None)

    def test_install_outside_main_thread_is_noop(self):
        outcome = {}

        def body():
            with ShutdownHandler() as handler:
                outcome["installed"] = bool(handler._previous)

        thread = threading.Thread(target=body)
        thread.start()
        thread.join()
        assert outcome["installed"] is False


class TestShutdownWatchdogInterleaving:
    """The stress scenario: a drain request lands from other threads
    while the serial watchdog is timing out a hung campaign.  Neither
    side holds a lock the other needs — the Event-based handler and the
    join-polling watchdog must interleave freely — so the test asserts
    progress (everything finishes well under the hang bound, i.e. no
    deadlock) and that the measurement closure stayed untouched (a
    post-stress run exports bit-identical results)."""

    def test_drain_during_watchdog_expiry(self, park):
        baseline = park.observe_suite(["470.lbm"], n_layouts=3)
        handler = ShutdownHandler()
        errors: list[str] = []
        done: list[int] = []

        def requester() -> None:
            # Land the drain request mid-deadline, then hammer the
            # read paths the supervisors use while the watchdog is
            # still join-polling the hung work thread.
            time.sleep(DEADLINE / 2)
            handler.request("SIGTERM")
            for _ in range(200):
                if not handler.requested:
                    errors.append("request lost")
                    return
                try:
                    handler.check()
                except ShutdownRequested as exc:
                    if exc.signal_name != "SIGTERM":
                        errors.append(f"wrong name {exc.signal_name!r}")
                        return
                else:
                    errors.append("check() missed the drain")
                    return
            done.append(1)

        threads = [
            threading.Thread(target=requester, daemon=True) for _ in range(4)
        ]
        start = telemetry.tick_seconds()
        for thread in threads:
            thread.start()
        with pytest.raises(CampaignTimeoutError):
            run_with_deadline(
                lambda: time.sleep(HANG), DEADLINE, describe="stress"
            )
        for thread in threads:
            thread.join(HANG)
        elapsed = telemetry.tick_seconds() - start
        assert not any(thread.is_alive() for thread in threads)
        assert not errors
        assert len(done) == len(threads)
        # Progress, not deadlock: the watchdog expired on time and the
        # requesters drained their loops well under the hang bound.
        assert elapsed < HANG

        # The drain semantics survived the interleaving: nothing new
        # starts under the handler...
        assert park.observe_suite(
            ["470.lbm"], n_layouts=3, shutdown=handler
        ) == {}
        # ...and the stress left the measurement closure untouched.
        results = park.observe_suite(["470.lbm"], n_layouts=3)
        assert_bit_identical(baseline["470.lbm"], results["470.lbm"])


class TestSuiteJournal:
    def test_round_trip_and_replay(self, tmp_path):
        journal = SuiteJournal(tmp_path / "suite-journal.json")
        journal.record_begin("456.hmmer", False, 0, 4)
        journal.record_commit("456.hmmer", False, 4)
        journal.record_begin("470.lbm", False, 2, 4)

        fresh = SuiteJournal(journal.path)  # re-read from disk
        state = fresh.replay()
        assert state.committed_layouts("456.hmmer") == 4
        assert not state.interrupted("456.hmmer")
        assert state.committed_layouts("470.lbm") == 0
        assert state.interrupted("470.lbm")
        assert state.interrupted_campaigns == [("470.lbm", False)]
        assert "1 campaign(s) committed" in state.summary()
        assert "1 interrupted" in state.summary()

    def test_heap_and_code_campaigns_are_distinct(self, tmp_path):
        journal = SuiteJournal(tmp_path / "j.json")
        journal.record_begin("403.gcc", True, 0, 4)
        journal.record_commit("403.gcc", True, 4)
        state = journal.replay()
        assert state.committed_layouts("403.gcc", heap=True) == 4
        assert state.committed_layouts("403.gcc", heap=False) == 0

    def test_envelope_is_checksummed_and_stable(self, tmp_path):
        journal = SuiteJournal(tmp_path / "j.json")
        journal.record_begin("456.hmmer", False, 0, 4)
        payload = json.loads(journal.path.read_text())
        assert payload["format_version"] == 1
        assert "checksum" in payload
        # Byte stability: keys are sorted, no timestamps anywhere, so
        # identical histories serialize to identical bytes.
        journal_b = SuiteJournal(tmp_path / "k.json")
        journal_b.record_begin("456.hmmer", False, 0, 4)
        assert journal_b.path.read_text() == journal.path.read_text()

    def test_corrupt_journal_quarantined_and_treated_as_empty(self, tmp_path):
        journal = SuiteJournal(tmp_path / "j.json")
        journal.record_commit("456.hmmer", False, 4)
        journal.path.write_text(journal.path.read_text()[:25])

        fresh = SuiteJournal(journal.path)
        state = fresh.replay()
        assert state.committed_layouts("456.hmmer") == 0  # never trusted
        assert not journal.path.exists()
        assert sorted(tmp_path.glob("j.json.corrupt-*"))
        # The journal stays usable after quarantine.
        fresh.record_commit("470.lbm", False, 4)
        assert fresh.replay().committed_layouts("470.lbm") == 4

    def test_bad_version_rejected(self, tmp_path):
        path = tmp_path / "j.json"
        path.write_text(json.dumps(
            {"format_version": 99, "checksum": "x", "entries": []}
        ))
        assert SuiteJournal(path).replay().begun == {}
        assert sorted(tmp_path.glob("j.json.corrupt-*"))

    def test_clear(self, tmp_path):
        journal = SuiteJournal(tmp_path / "j.json")
        journal.record_begin("456.hmmer", False, 0, 4)
        journal.clear()
        assert not journal.path.exists()
        assert SuiteJournal(journal.path).replay().begun == {}

    def test_entry_validation(self):
        with pytest.raises(ConfigurationError):
            JournalEntry(
                event="abort", benchmark="x", heap=False,
                start_index=0, n_layouts=1,
            )
        with pytest.raises(ConfigurationError):
            JournalEntry(
                event="begin", benchmark="x", heap=False,
                start_index=5, n_layouts=4,
            )


class TestHangRecovery:
    """Injected hangs are killed by the supervisor and recovered
    bit-identically, in both the serial and the pool path."""

    def test_serial_watchdog_recovers_bit_identically(self, park):
        baseline = park.observe_suite(["456.hmmer", "470.lbm"], n_layouts=3)
        plan = FaultPlan(
            seed=1, hang_benchmarks=("456.hmmer",), hang_seconds=HANG
        )
        report = FailureReport()
        policy = RetryPolicy(max_retries=2, backoff_base=0.0)
        start = telemetry.tick_seconds()
        with faults.injected(plan):
            results = park.observe_suite(
                ["456.hmmer", "470.lbm"], n_layouts=3,
                retry_policy=policy, report=report,
                deadline_seconds=DEADLINE,
            )
        elapsed = telemetry.tick_seconds() - start
        assert report.ok
        assert [i.benchmark for i in report.timed_out] == ["456.hmmer"]
        assert [i.benchmark for i in report.recovered] == ["456.hmmer"]
        for name in baseline:
            assert_bit_identical(baseline[name], results[name])
        # The hang cost ~one deadline, not the full hang duration.
        assert elapsed < HANG

    def test_pool_worker_hang_killed_and_recovered(self, park):
        baseline = park.observe_suite(["456.hmmer", "470.lbm"], n_layouts=3)
        plan = FaultPlan(
            seed=1, hang_benchmarks=("456.hmmer",), hang_seconds=HANG
        )
        report = FailureReport()
        policy = RetryPolicy(max_retries=2, backoff_base=0.0)
        with faults.injected(plan):
            results = park.observe_suite(
                ["456.hmmer", "470.lbm"], n_layouts=3, workers=2,
                retry_policy=policy, report=report,
                deadline_seconds=DEADLINE,
            )
        assert report.ok
        assert report.breaker_tripped is None
        # One expiry in the pool, one in the serial re-run (the forced
        # hang fires once per process), then recovery.
        timed_out = [i.benchmark for i in report.timed_out]
        assert timed_out and set(timed_out) == {"456.hmmer"}
        assert [i.benchmark for i in report.recovered] == ["456.hmmer"]
        assert set(results) == {"456.hmmer", "470.lbm"}
        for name in baseline:
            assert_bit_identical(baseline[name], results[name])

    def test_unbounded_run_still_completes(self, park):
        """Without a deadline an injected hang merely stalls (bounded by
        hang_seconds) — results are unchanged."""
        baseline = park.observe_suite(["470.lbm"], n_layouts=3)
        plan = FaultPlan(
            seed=1, hang_benchmarks=("470.lbm",), hang_seconds=0.05
        )
        with faults.injected(plan):
            results = park.observe_suite(["470.lbm"], n_layouts=3)
        assert_bit_identical(baseline["470.lbm"], results["470.lbm"])

    def test_budget_exhaustion_records_failure(self, park):
        # worker_hang rate 1.0 hangs every execution; with a short
        # deadline and no retries the campaign fails structurally.
        plan = FaultPlan(seed=1, worker_hang=1.0, hang_seconds=HANG)
        report = FailureReport()
        policy = RetryPolicy(max_retries=0, backoff_base=0.0)
        with faults.injected(plan):
            results = park.observe_suite(
                ["470.lbm"], n_layouts=3, retry_policy=policy,
                report=report, deadline_seconds=DEADLINE,
            )
        assert results == {}
        assert not report.ok
        assert [i.benchmark for i in report.failed] == ["470.lbm"]
        assert [i.benchmark for i in report.timed_out] == ["470.lbm"]


class TestCircuitBreakerIntegration:
    def test_breaker_trips_and_degrades_remainder(self, park):
        baseline = park.observe_suite(["456.hmmer", "470.lbm"], n_layouts=3)
        plan = FaultPlan(
            seed=1, hang_benchmarks=("456.hmmer",), hang_seconds=HANG
        )
        report = FailureReport()
        policy = RetryPolicy(max_retries=2, backoff_base=0.0)
        with faults.injected(plan):
            results = park.observe_suite(
                ["456.hmmer", "470.lbm"], n_layouts=3, workers=2,
                retry_policy=policy, report=report,
                deadline_seconds=DEADLINE, breaker_threshold=1,
            )
        assert report.breaker_tripped is not None
        assert "serial" in report.breaker_tripped
        assert "TRIPPED" in report.render()
        assert bool(report)
        # The remainder still completed — serially — bit-identically.
        assert set(results) == {"456.hmmer", "470.lbm"}
        for name in baseline:
            assert_bit_identical(baseline[name], results[name])

    def test_serial_path_never_trips(self, park):
        plan = FaultPlan(
            seed=1, hang_benchmarks=("470.lbm",), hang_seconds=HANG
        )
        report = FailureReport()
        policy = RetryPolicy(max_retries=2, backoff_base=0.0)
        with faults.injected(plan):
            park.observe_suite(
                ["470.lbm"], n_layouts=3, retry_policy=policy,
                report=report, deadline_seconds=DEADLINE,
                breaker_threshold=1,
            )
        assert report.breaker_tripped is None


class TestDrain:
    def test_park_drains_between_campaigns(self, park):
        shutdown = ShutdownHandler()
        shutdown.request("SIGTERM")
        results = park.observe_suite(
            ["456.hmmer", "470.lbm"], n_layouts=3, shutdown=shutdown
        )
        assert results == {}  # nothing new starts once draining

    def test_lab_prefetch_drains(self, tmp_path):
        shutdown = ShutdownHandler()
        lab = Laboratory(
            scale=TINY, machine_seed=7, cache_dir=tmp_path, shutdown=shutdown
        )
        shutdown.request("SIGINT")
        lab.prefetch(["456.hmmer", "470.lbm"])
        assert lab.store.stats.layouts_measured == 0


class TestLaboratorySupervision:
    def test_deadline_timeout_recovered_bit_identically(self, monkeypatch):
        baseline = Laboratory(scale=TINY, machine_seed=7).observations(
            "456.hmmer"
        )
        lab = Laboratory(scale=TINY, machine_seed=7, deadline_seconds=DEADLINE)
        lab.retry_policy = RetryPolicy(
            max_retries=2, backoff_base=0.0, deadline_seconds=DEADLINE
        )
        original = Laboratory._measure_campaign_once
        hangs = iter([True, False])

        def hang_once(self, name, heap):
            if next(hangs):
                faults.hang(HANG)
            return original(self, name, heap)

        monkeypatch.setattr(Laboratory, "_measure_campaign_once", hang_once)
        recovered = lab.observations("456.hmmer")
        assert_bit_identical(baseline, recovered)
        statuses = [i.status for i in lab.failure_report.incidents]
        assert statuses == ["timed_out", "recovered"]

    def test_resume_requires_cache_dir(self):
        with pytest.raises(ConfigurationError, match="cache_dir"):
            Laboratory(scale=TINY, resume=True)

    def test_fresh_lab_clears_stale_journal(self, tmp_path):
        stale = SuiteJournal(tmp_path / "suite-journal.json")
        stale.record_begin("456.hmmer", False, 0, 4)
        lab = Laboratory(scale=TINY, machine_seed=7, cache_dir=tmp_path)
        assert lab.resumed is None
        assert not stale.path.exists()

    def test_resumed_lab_replays_journal(self, tmp_path):
        stale = SuiteJournal(tmp_path / "suite-journal.json")
        stale.record_begin("456.hmmer", False, 0, 4)
        lab = Laboratory(
            scale=TINY, machine_seed=7, cache_dir=tmp_path, resume=True
        )
        assert lab.resumed is not None
        assert lab.resumed.interrupted("456.hmmer")

    def test_serial_suite_is_journaled(self, tmp_path):
        lab = Laboratory(scale=TINY, machine_seed=7, cache_dir=tmp_path)
        lab.observations("470.lbm")
        state = SuiteJournal(tmp_path / "suite-journal.json").replay()
        assert state.committed_layouts("470.lbm") == TINY.n_layouts
        assert not state.interrupted("470.lbm")


_KILL_DRIVER = textwrap.dedent(
    """\
    import sys
    from repro.harness.lab import Laboratory, Scale

    TINY = Scale(name="tiny", n_layouts=4, trace_events=2500,
                 mase_trace_events=2000, mase_configs=5, ltage_layouts=4)
    lab = Laboratory(scale=TINY, machine_seed=7, cache_dir=sys.argv[1])
    print("READY", flush=True)
    lab.prefetch(["456.hmmer", "445.gobmk", "470.lbm"])
    print("DONE", flush=True)
    """
)


class TestKillResumeAcceptance:
    """The issue's acceptance scenario: ``kill -9`` mid-suite, then a
    ``--resume`` rerun — bit-identical to an uninterrupted run, with
    only the missing slices re-measured."""

    def test_sigkill_then_resume_is_bit_identical(self, tmp_path):
        names = ["456.hmmer", "445.gobmk", "470.lbm"]
        baseline_lab = Laboratory(scale=TINY, machine_seed=7)
        baseline = {name: baseline_lab.observations(name) for name in names}

        cache = tmp_path / "cache"
        cache.mkdir()
        import repro

        src_dir = Path(repro.__file__).resolve().parents[1]
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (str(src_dir), env.get("PYTHONPATH", "")) if p
        )
        proc = subprocess.Popen(
            [sys.executable, "-c", _KILL_DRIVER, str(cache)],
            stdout=subprocess.PIPE, env=env, text=True,
        )
        try:
            # SIGKILL as soon as the first campaign file lands: the
            # second campaign is then mid-flight (begun, not committed).
            deadline = telemetry.tick_seconds() + 120.0
            while telemetry.tick_seconds() < deadline:
                stored = [
                    p for p in sorted(cache.glob("*.json"))
                    if p.name != "suite-journal.json"
                ]
                if stored or proc.poll() is not None:
                    break
                time.sleep(0.02)
            assert proc.poll() is None, "driver finished before the kill"
            proc.kill()
        finally:
            proc.wait()

        journal = SuiteJournal(cache / "suite-journal.json")
        state = journal.replay()
        committed = [n for n in names if state.committed_layouts(n) > 0]
        assert committed, "nothing committed before the kill"
        assert len(committed) < len(names), "everything finished pre-kill"

        resumed = Laboratory(
            scale=TINY, machine_seed=7, cache_dir=cache, resume=True
        )
        assert resumed.resumed is not None
        resumed.prefetch(names)
        results = {name: resumed.observations(name) for name in names}
        for name in names:
            assert_bit_identical(baseline[name], results[name])
        # Only the missing slices were re-measured: everything the
        # interrupted run persisted was served from the store.
        total = len(names) * TINY.n_layouts
        measured = resumed.store.stats.layouts_measured
        assert measured < total
        assert measured <= (len(names) - len(committed)) * TINY.n_layouts


class TestCliSupervision:
    def test_bad_deadline_is_usage_error(self, capsys):
        from repro.cli import main

        assert main(["headline", "--deadline", "0"]) == 2
        assert "--deadline" in capsys.readouterr().err

    def test_resume_without_cache_dir_is_usage_error(self, capsys):
        from repro.cli import main

        assert main(["headline", "--resume", "--no-cache"]) == 2
        assert "--resume" in capsys.readouterr().err

    def test_help_documents_supervision(self, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["--help"])
        text = capsys.readouterr().out
        assert "--deadline" in text
        assert "--resume" in text
        assert "graceful shutdown" in text
