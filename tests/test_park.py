"""Tests for the machine park."""

from __future__ import annotations

import pytest

from repro.core.park import MachinePark
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def park():
    return MachinePark(n_machines=4, base_seed=9, trace_events=2500)


class TestAssignment:
    def test_machine_seeds_distinct(self, park):
        seeds = {park.machine_seed(k) for k in range(4)}
        assert len(seeds) == 4

    def test_assignment_stable(self, park):
        assert park.machine_for("403.gcc") == park.machine_for("403.gcc")

    def test_assignment_in_range(self, park):
        for name in ("a", "b", "c", "d", "e"):
            assert 0 <= park.machine_for(name) < 4

    def test_identical_configurations(self, park):
        assert all(m.config == park.machines[0].config for m in park.machines)

    def test_bad_machine_index(self, park):
        with pytest.raises(ConfigurationError):
            park.machine_seed(4)

    def test_bad_pool_size(self):
        with pytest.raises(ConfigurationError):
            MachinePark(n_machines=0)


class TestCampaigns:
    def test_observe_suite_serial(self, park):
        results = park.observe_suite(["456.hmmer", "470.lbm"], n_layouts=4)
        assert set(results) == {"456.hmmer", "470.lbm"}
        assert all(len(obs) == 4 for obs in results.values())

    def test_parallel_equals_serial(self, park):
        serial = park.observe_suite(["456.hmmer", "445.gobmk"], n_layouts=3)
        parallel = park.observe_suite(
            ["456.hmmer", "445.gobmk"], n_layouts=3, workers=2
        )
        for name in serial:
            assert (serial[name].cpis == parallel[name].cpis).all()
            assert (serial[name].mpkis == parallel[name].mpkis).all()

    def test_same_base_seed_same_lab(self):
        a = MachinePark(n_machines=2, base_seed=5, trace_events=2500)
        b = MachinePark(n_machines=2, base_seed=5, trace_events=2500)
        obs_a = a.observe_suite(["456.hmmer"], n_layouts=3)["456.hmmer"]
        obs_b = b.observe_suite(["456.hmmer"], n_layouts=3)["456.hmmer"]
        assert (obs_a.cpis == obs_b.cpis).all()

    def test_different_base_seed_different_noise(self):
        a = MachinePark(n_machines=2, base_seed=5, trace_events=2500)
        b = MachinePark(n_machines=2, base_seed=6, trace_events=2500)
        obs_a = a.observe_suite(["456.hmmer"], n_layouts=3)["456.hmmer"]
        obs_b = b.observe_suite(["456.hmmer"], n_layouts=3)["456.hmmer"]
        assert not (obs_a.cpis == obs_b.cpis).all()

    def test_heap_randomization_propagates(self, park):
        results = park.observe_suite(
            ["454.calculix"], n_layouts=3, randomize_heap=True
        )
        observations = results["454.calculix"]
        assert all(obs.heap_seed is not None for obs in observations)

    def test_negative_workers_rejected(self, park):
        with pytest.raises(ConfigurationError):
            park.observe_suite(["456.hmmer"], n_layouts=2, workers=-1)

    def test_duplicate_benchmarks_rejected(self, park):
        """Duplicates used to be measured twice and silently collapsed
        (last one wins) in the results dict; now they are an error."""
        with pytest.raises(ConfigurationError, match="duplicate"):
            park.observe_suite(["456.hmmer", "470.lbm", "456.hmmer"], n_layouts=2)

    def test_start_indices_resume_suffix(self, park):
        full = park.observe_suite(["456.hmmer"], n_layouts=4)["456.hmmer"]
        suffix = park.observe_suite(
            ["456.hmmer"], n_layouts=4, start_indices={"456.hmmer": 2}
        )["456.hmmer"]
        assert [o.layout_index for o in suffix] == [2, 3]
        assert (suffix.cpis == full.cpis[2:]).all()

    def test_start_index_out_of_range(self, park):
        with pytest.raises(ConfigurationError):
            park.observe_suite(
                ["456.hmmer"], n_layouts=4, start_indices={"456.hmmer": 5}
            )

    def test_explicit_machine_seeds(self):
        park = MachinePark(machine_seeds=[11, 22], trace_events=2500)
        assert park.n_machines == 2
        assert park.machine_seed(0) == 11
        assert park.machine_seed(1) == 22
        assert park.machines[0].seed == 11


class TestCustomConfig:
    def test_custom_config_reaches_workers(self):
        """A park with a custom machine config must measure with it —
        serially and in worker processes alike."""
        from repro.machine.config import TimingParameters, XeonE5440Config

        free = XeonE5440Config(
            timing=TimingParameters(mispredict_penalty=0.0, coupling_mpki_l1d=0.0)
        )
        default_park = MachinePark(n_machines=2, base_seed=5, trace_events=2500)
        free_park = MachinePark(
            n_machines=2, base_seed=5, config=free, trace_events=2500
        )
        baseline = default_park.observe_suite(["445.gobmk"], n_layouts=2)
        cheap_serial = free_park.observe_suite(["445.gobmk"], n_layouts=2)
        cheap_parallel = free_park.observe_suite(
            ["445.gobmk"], n_layouts=2, workers=2
        )
        # Zero misprediction penalty lowers CPI...
        assert cheap_serial["445.gobmk"].cpis.mean() < baseline["445.gobmk"].cpis.mean()
        # ...and the parallel path uses the same config.
        assert (
            cheap_parallel["445.gobmk"].cpis == cheap_serial["445.gobmk"].cpis
        ).all()
