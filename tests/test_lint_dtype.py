"""The dtype lint pack: the dtypeflow lattice and VEC001/VEC002.

Hypothesis property tests pin the lattice algebra (promotion is
commutative, associative, monotone in width; UNKNOWN absorbs and never
flags), unit tests pin the abstract interpreter's inference on the
constructor/cast/interval vocabulary ``uarch/vector.py`` actually
uses, fixture tests demonstrate each rule's true positives and true
negatives, and the mutation check the issue demands proves that
re-introducing a gshare-style ``0x7FFFFFFF`` pc mask produces VEC001
at the exact mutated line.
"""

from __future__ import annotations

import ast
import contextlib
import io
import json
import math
from pathlib import Path

from hypothesis import given
from hypothesis import strategies as st

from repro.lint.cli import main as lint_main
from repro.lint.dtypeflow import (
    INT_BOUNDS,
    INT_DTYPES,
    UNKNOWN_INFO,
    WIDTH,
    ArrayInfo,
    DType,
    clip_to_dtype,
    narrowing_hazard,
    promote,
)

DTYPE_RULES = "VEC001,VEC002"

REPO_ROOT = Path(__file__).resolve().parents[1]

dtypes = st.sampled_from(list(DType))
known_dtypes = st.sampled_from([d for d in DType if d is not DType.UNKNOWN])


def run_cli(*argv):
    out, err = io.StringIO(), io.StringIO()
    with contextlib.redirect_stdout(out), contextlib.redirect_stderr(err):
        code = lint_main(list(argv))
    return code, out.getvalue(), err.getvalue()


def write_tree(tmp_path: Path, files: dict[str, str]) -> Path:
    for rel, source in files.items():
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source)
    return tmp_path


def lint_tree(tmp_path: Path, files: dict[str, str], rules: str = DTYPE_RULES):
    root = write_tree(tmp_path, files)
    return run_cli("--rules", rules, str(root))


def findings_json(tmp_path: Path, files: dict[str, str], rules: str = DTYPE_RULES):
    root = write_tree(tmp_path, files)
    _, out, _ = run_cli("--rules", rules, "--json", str(root))
    return json.loads(out)


def infer(source: str, expr: str) -> ArrayInfo:
    """Run DtypeScope over ``source`` and evaluate ``expr``'s info."""
    from repro.lint.callgraph import Program
    from repro.lint.dtypeflow import DtypeScope
    from repro.lint.rules.base import annotate_parents

    rel = "src/repro/uarch/kernel.py"
    tree = ast.parse(source)
    annotate_parents(tree)
    program = Program.build([(rel, tree, source.splitlines())])
    module = program.modules[rel]
    fn = module.functions.get("kernel")
    body = fn.node.body if fn is not None else tree.body
    scope = DtypeScope(program, module, fn, body, {})
    return scope.info_of(ast.parse(expr, mode="eval").body)


# ----------------------------------------------------------------------
# Lattice algebra.
# ----------------------------------------------------------------------


class TestPromotionLattice:
    @given(dtypes, dtypes)
    def test_promote_commutes(self, a, b):
        assert promote(a, b) == promote(b, a)

    @given(dtypes, dtypes, dtypes)
    def test_promote_associates(self, a, b, c):
        assert promote(promote(a, b), c) == promote(a, promote(b, c))

    @given(dtypes)
    def test_promote_idempotent(self, a):
        assert promote(a, a) == a

    @given(dtypes)
    def test_unknown_absorbs(self, a):
        assert promote(a, DType.UNKNOWN) == DType.UNKNOWN

    @given(known_dtypes, known_dtypes)
    def test_promote_monotone_in_width(self, a, b):
        joined = promote(a, b)
        assert WIDTH[joined] >= WIDTH[a]
        assert WIDTH[joined] >= WIDTH[b]

    @given(known_dtypes, known_dtypes)
    def test_float_dominates(self, a, b):
        if DType.FLOAT64 in (a, b):
            assert promote(a, b) == DType.FLOAT64


class TestNarrowingHazard:
    @given(dtypes)
    def test_unknown_range_never_flags(self, target):
        assert narrowing_hazard(UNKNOWN_INFO, target) is None
        assert narrowing_hazard(ArrayInfo(DType.INT64), target) is None

    @given(st.sampled_from(sorted(INT_DTYPES, key=WIDTH.get)))
    def test_in_range_value_never_flags(self, target):
        lo, hi = INT_BOUNDS[target]
        info = ArrayInfo(DType.INT64, lo=lo, hi=hi)
        assert narrowing_hazard(info, target) is None

    @given(st.sampled_from(sorted(INT_DTYPES, key=WIDTH.get)))
    def test_exceeding_value_flags(self, target):
        _, hi = INT_BOUNDS[target]
        info = ArrayInfo(DType.INT64, lo=0, hi=hi + 1)
        assert narrowing_hazard(info, target) is not None

    def test_large_int_to_float64_flags(self):
        info = ArrayInfo(DType.INT64, lo=0, hi=2**60)
        assert narrowing_hazard(info, DType.FLOAT64) is not None
        exact = ArrayInfo(DType.INT64, lo=0, hi=2**53)
        assert narrowing_hazard(exact, DType.FLOAT64) is None


class TestClipToDtype:
    @given(known_dtypes)
    def test_unknown_range_stays_unknown(self, target):
        clipped = clip_to_dtype(ArrayInfo(DType.INT64), target)
        assert clipped.dtype == target
        assert clipped.lo is None and clipped.hi is None

    def test_fitting_range_is_kept(self):
        info = ArrayInfo(DType.INT64, lo=0, hi=100)
        clipped = clip_to_dtype(info, DType.INT8)
        assert (clipped.lo, clipped.hi) == (0, 100)

    def test_exceeding_range_degrades_to_dtype_bounds(self):
        info = ArrayInfo(DType.INT64, lo=0, hi=10**6)
        clipped = clip_to_dtype(info, DType.INT8)
        assert (clipped.lo, clipped.hi) == INT_BOUNDS[DType.INT8]


# ----------------------------------------------------------------------
# Abstract-interpreter inference.
# ----------------------------------------------------------------------


class TestDtypeScopeInference:
    def test_zeros_with_dtype_keyword(self):
        info = infer(
            "import numpy as np\n"
            "def kernel(n):\n"
            "    acc = np.zeros(n, dtype=np.int32)\n",
            "acc",
        )
        assert info.dtype == DType.INT32
        assert (info.lo, info.hi) == (0, 0)

    def test_arange_with_constant_stop(self):
        info = infer(
            "import numpy as np\n"
            "def kernel():\n"
            "    idx = np.arange(16)\n",
            "idx",
        )
        assert info.dtype == DType.INT64
        assert (info.lo, info.hi) == (0, 15)

    def test_wide_lexicon_parameter(self):
        info = infer("def kernel(pcs):\n    pass\n", "pcs")
        assert info.dtype == DType.INT64
        assert info.lo == 0 and info.hi == 2**63 - 1

    def test_cumsum_of_positive_ints_is_unbounded(self):
        info = infer(
            "import numpy as np\n"
            "def kernel():\n"
            "    ones = np.ones(64, dtype=np.int8)\n"
            "    acc = np.cumsum(ones)\n",
            "acc",
        )
        assert info.dtype == DType.INT64
        assert info.hi == math.inf

    def test_mask_bounds_the_result(self):
        info = infer(
            "def kernel(pcs):\n"
            "    idx = pcs & 1023\n",
            "idx",
        )
        assert (info.lo, info.hi) == (0, 1023)

    def test_astype_of_fitting_mask_keeps_range(self):
        info = infer(
            "import numpy as np\n"
            "def kernel(pcs):\n"
            "    small = (pcs & 63).astype(np.int8)\n",
            "small",
        )
        assert info.dtype == DType.INT8
        assert (info.lo, info.hi) == (0, 63)


# ----------------------------------------------------------------------
# VEC001 — narrowing casts.
# ----------------------------------------------------------------------


class TestNarrowingCastRule:
    def test_wide_value_into_int32_flags(self, tmp_path):
        source = (
            "import numpy as np\n"
            "def index(pcs):\n"
            "    return pcs.astype(np.int32)\n"
        )
        payload = findings_json(tmp_path, {"src/repro/uarch/kern.py": source})
        assert payload["summary"]["by_rule"].get("VEC001") == 1
        (finding,) = payload["findings"]
        assert finding["line"] == 3

    def test_in_range_value_into_int32_is_clean(self, tmp_path):
        source = (
            "import numpy as np\n"
            "def index(entries):\n"
            "    idx = np.arange(1024)\n"
            "    return idx.astype(np.int32)\n"
        )
        code, _, _ = lint_tree(tmp_path, {"src/repro/uarch/kern.py": source})
        assert code == 0

    def test_literal_mask_on_wide_value_flags(self, tmp_path):
        source = (
            "import numpy as np\n"
            "def index(pcs, entries):\n"
            "    return (pcs & 0xFFFF).astype(np.int64)\n"
        )
        payload = findings_json(tmp_path, {"src/repro/uarch/kern.py": source})
        assert payload["summary"]["by_rule"].get("VEC001") == 1
        (finding,) = payload["findings"]
        assert "mask" in finding["message"]

    def test_unknown_range_astype_is_clean(self, tmp_path):
        source = (
            "import numpy as np\n"
            "def pack(outcomes):\n"
            "    return (2 * outcomes - 1).astype(np.int8)\n"
        )
        code, _, _ = lint_tree(tmp_path, {"src/repro/uarch/kern.py": source})
        assert code == 0

    def test_call_form_cast_flags(self, tmp_path):
        source = (
            "import numpy as np\n"
            "def index(addresses):\n"
            "    return np.int16(addresses)\n"
        )
        payload = findings_json(tmp_path, {"src/repro/uarch/kern.py": source})
        assert payload["summary"]["by_rule"].get("VEC001") == 1

    def test_computed_mask_never_flags(self, tmp_path):
        source = (
            "def index(pcs, bits):\n"
            "    mask = (1 << bits) - 1\n"
            "    return pcs & mask\n"
        )
        code, _, _ = lint_tree(tmp_path, {"src/repro/uarch/kern.py": source})
        assert code == 0

    def test_outside_uarch_is_out_of_scope(self, tmp_path):
        source = (
            "import numpy as np\n"
            "def index(pcs):\n"
            "    return pcs.astype(np.int32)\n"
        )
        code, _, _ = lint_tree(tmp_path, {"src/repro/core/kern.py": source})
        assert code == 0


_GSHARE_FIXTURE = (
    "import numpy as np\n"
    "class GsharePredictor:\n"
    "    def __init__(self, entries):\n"
    "        self.entries = entries\n"
    "    def indices(self, pcs, outcomes):\n"
    "        hist = np.zeros(pcs.size, dtype=np.int64)\n"
    "        index = (pcs >> 2) ^ hist\n"
    "        index &= self.entries - 1\n"
    "        return index\n"
)


class TestGshareMaskMutation:
    """The issue's mutation check: the ``0x7FFFFFFF`` pc mask.

    The paper's reference gshare folds the pc with a literal 31-bit
    mask; on int64 pc arrays that silently truncates addresses above
    2 GiB and diverges from the scalar oracle.  The clean fixture must
    lint silent; re-introducing the mask must flag the exact line.
    """

    def test_clean_gshare_fixture_is_silent(self, tmp_path):
        code, _, _ = lint_tree(
            tmp_path, {"src/repro/uarch/gshare_fix.py": _GSHARE_FIXTURE}
        )
        assert code == 0

    def test_reintroduced_mask_flags_the_exact_line(self, tmp_path):
        original = "        index = (pcs >> 2) ^ hist\n"
        mutated_line = "        index = ((pcs & 0x7FFFFFFF) >> 2) ^ hist\n"
        mutated = _GSHARE_FIXTURE.replace(original, mutated_line)
        expected_line = (
            mutated.splitlines().index(mutated_line.rstrip("\n")) + 1
        )
        payload = findings_json(
            tmp_path,
            {"src/repro/uarch/gshare_fix.py": mutated},
            rules="VEC001",
        )
        assert payload["summary"]["by_rule"].get("VEC001") == 1
        (finding,) = payload["findings"]
        assert finding["line"] == expected_line
        assert "0x7fffffff" in finding["message"].lower().replace(" ", "")


# ----------------------------------------------------------------------
# VEC002 — promotion divergence.
# ----------------------------------------------------------------------


class TestPromotionDivergenceRule:
    def test_narrow_product_that_can_wrap_flags(self, tmp_path):
        source = (
            "import numpy as np\n"
            "def square():\n"
            "    a = np.full(64, 300, dtype=np.int16)\n"
            "    return a * a\n"
        )
        counts = findings_json(
            tmp_path, {"src/repro/uarch/kern.py": source}
        )["summary"]["by_rule"]
        assert counts.get("VEC002") == 1

    def test_in_range_arithmetic_is_clean(self, tmp_path):
        source = (
            "import numpy as np\n"
            "def bump():\n"
            "    a = np.zeros(64, dtype=np.int8)\n"
            "    return a + 1\n"
        )
        code, _, _ = lint_tree(tmp_path, {"src/repro/uarch/kern.py": source})
        assert code == 0

    def test_huge_int_meeting_float_flags_precision(self, tmp_path):
        source = (
            "def scale(pcs):\n"
            "    return pcs * 0.5\n"
        )
        counts = findings_json(
            tmp_path, {"src/repro/uarch/kern.py": source}
        )["summary"]["by_rule"]
        assert counts.get("VEC002") == 1

    def test_scalar_scalar_arithmetic_is_oracle_semantics(self, tmp_path):
        source = (
            "def fold(bits):\n"
            "    mask = (1 << bits) - 1\n"
            "    return mask * mask\n"
        )
        code, _, _ = lint_tree(tmp_path, {"src/repro/uarch/kern.py": source})
        assert code == 0

    def test_unknown_operand_never_flags(self, tmp_path):
        source = (
            "def mix(table, deltas):\n"
            "    return table * deltas\n"
        )
        code, _, _ = lint_tree(tmp_path, {"src/repro/uarch/kern.py": source})
        assert code == 0


# ----------------------------------------------------------------------
# The shipped kernels stay clean, and the CLI catalogue.
# ----------------------------------------------------------------------


class TestShippedTreeAndCli:
    def test_real_vector_module_is_clean(self, tmp_path):
        rel = "src/repro/uarch/vector.py"
        source = (REPO_ROOT / rel).read_text()
        code, _, _ = lint_tree(tmp_path, {rel: source})
        assert code == 0

    def test_unknown_rule_exits_2_with_catalogue(self):
        code, _, err = run_cli("--rules", "NOPE999", "src")
        assert code == 2
        assert "unknown rule" in err
        # The catalogue rides along so the caller can self-correct.
        assert "VEC001" in err
        assert "(concurrency)" in err

    def test_list_rules_shows_tiers(self):
        code, out, _ = run_cli("--list-rules")
        assert code == 0
        assert "(per-file)" in out
        assert "(interprocedural)" in out
        assert "(units)" in out
        assert "(concurrency)" in out
        assert "(dtype)" in out
        for rule_id in ("CONC002", "CONC003", "CONC004", "CONC005",
                       "VEC001", "VEC002"):
            assert rule_id in out
