"""Tests for campaign persistence (JSON / CSV / npz round-trips)."""

from __future__ import annotations

import csv

import numpy as np
import pytest

import json

from repro.errors import ReproError
from repro.persistence import (
    CampaignProvenance,
    export_observations_csv,
    load_campaign,
    load_observations,
    load_trace,
    save_observations,
    save_trace,
)

from tests.test_model import _synthetic_observations


class TestObservationRoundTrip:
    def test_json_round_trip_exact(self, tmp_path):
        original = _synthetic_observations(n=20)
        path = tmp_path / "obs.json"
        save_observations(original, path)
        reloaded = load_observations(path)
        assert reloaded.benchmark == original.benchmark
        assert len(reloaded) == len(original)
        assert (reloaded.cpis == original.cpis).all()
        assert (reloaded.mpkis == original.mpkis).all()
        assert (reloaded.series("l2_mpki") == original.series("l2_mpki")).all()

    def test_layout_metadata_preserved(self, tmp_path):
        original = _synthetic_observations(n=5)
        path = tmp_path / "obs.json"
        save_observations(original, path)
        reloaded = load_observations(path)
        for a, b in zip(original, reloaded):
            assert a.layout_index == b.layout_index
            assert a.layout_seed == b.layout_seed
            assert a.heap_seed == b.heap_seed

    def test_missing_file(self, tmp_path):
        with pytest.raises(ReproError):
            load_observations(tmp_path / "nope.json")

    def test_corrupt_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ReproError):
            load_observations(path)

    def test_wrong_version(self, tmp_path):
        path = tmp_path / "old.json"
        path.write_text('{"format_version": 99, "benchmark": "x", "observations": []}')
        with pytest.raises(ReproError, match="version"):
            load_observations(path)


class TestByteStability:
    """DET006: serialized bytes depend on content, not dict history."""

    def test_envelope_bytes_stable_across_key_order(self, tmp_path):
        from repro.persistence import dump_campaign

        observations = _synthetic_observations(n=6)
        reference = dump_campaign(observations)
        # Reload and re-dump: the loader rebuilds every dict from
        # scratch in its own insertion order, so byte-equality here
        # proves the envelope does not depend on construction order.
        path = tmp_path / "obs.json"
        save_observations(observations, path)
        reloaded = load_observations(path)
        assert dump_campaign(reloaded) == reference

    def test_checksum_is_order_independent(self, tmp_path):
        from repro.persistence import _records_checksum

        observations = _synthetic_observations(n=4)
        path = tmp_path / "obs.json"
        save_observations(observations, path)
        payload = json.loads(path.read_text())
        # Scramble the key order of every record (JSON object order is
        # insertion order in Python dicts) and re-checksum.
        scrambled = [
            dict(sorted(record.items(), reverse=True))
            for record in payload["observations"]
        ]
        assert _records_checksum(scrambled) == payload["checksum"]
        # A scrambled-but-equal file still loads and verifies.
        payload["observations"] = scrambled
        path.write_text(json.dumps(payload))  # repro: allow-DET006 deliberately unsorted to prove the loader accepts any key order
        reloaded = load_observations(path)
        assert len(reloaded) == 4

    def test_envelope_keys_are_sorted_on_disk(self, tmp_path):
        observations = _synthetic_observations(n=3)
        path = tmp_path / "obs.json"
        save_observations(observations, path)
        payload = json.loads(path.read_text())
        assert list(payload) == sorted(payload)


class TestProvenance:
    PROVENANCE = CampaignProvenance(
        trace_events=6000, runs_per_group=5, machine_seed=7, randomize_heap=False
    )

    def test_provenance_round_trip(self, tmp_path):
        original = _synthetic_observations(n=5)
        path = tmp_path / "obs.json"
        save_observations(original, path, provenance=self.PROVENANCE)
        observations, provenance = load_campaign(path)
        assert provenance == self.PROVENANCE
        assert (observations.cpis == original.cpis).all()

    def test_format_version_is_2(self, tmp_path):
        path = tmp_path / "obs.json"
        save_observations(_synthetic_observations(n=4), path)
        payload = json.loads(path.read_text())
        assert payload["format_version"] == 2

    def test_provenance_optional(self, tmp_path):
        path = tmp_path / "obs.json"
        save_observations(_synthetic_observations(n=4), path)
        _, provenance = load_campaign(path)
        assert provenance is None

    def test_v1_file_still_loads(self, tmp_path):
        """A version-1 file (no provenance) remains readable."""
        original = _synthetic_observations(n=5)
        path = tmp_path / "v1.json"
        save_observations(original, path)
        payload = json.loads(path.read_text())
        payload["format_version"] = 1
        del payload["provenance"]
        path.write_text(json.dumps(payload, sort_keys=True))
        observations, provenance = load_campaign(path)
        assert provenance is None
        assert (observations.cpis == original.cpis).all()
        assert len(load_observations(path)) == 5

    def test_malformed_provenance_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        save_observations(_synthetic_observations(n=4), path, provenance=self.PROVENANCE)
        payload = json.loads(path.read_text())
        del payload["provenance"]["machine_seed"]
        path.write_text(json.dumps(payload, sort_keys=True))
        with pytest.raises(ReproError, match="provenance"):
            load_campaign(path)


class TestCsvExport:
    def test_csv_rows(self, tmp_path):
        observations = _synthetic_observations(n=7)
        path = tmp_path / "obs.csv"
        export_observations_csv(observations, path)
        with open(path, newline="") as handle:
            rows = list(csv.reader(handle))
        assert len(rows) == 8  # header + 7
        header = rows[0]
        assert "cpi" in header
        assert "mpki" in header
        cpi_col = header.index("cpi")
        values = [float(row[cpi_col]) for row in rows[1:]]
        assert values == pytest.approx(list(observations.cpis))


class TestTraceRoundTrip:
    def test_npz_round_trip_exact(self, tmp_path, tiny_trace):
        path = tmp_path / "trace.npz"
        save_trace(tiny_trace, path)
        reloaded = load_trace(path)
        assert reloaded.program == tiny_trace.program
        assert reloaded.seed == tiny_trace.seed
        assert (reloaded.site_ids == tiny_trace.site_ids).all()
        assert (reloaded.outcomes == tiny_trace.outcomes).all()
        assert (reloaded.dacc_offset == tiny_trace.dacc_offset).all()
        assert (reloaded.activation_start == tiny_trace.activation_start).all()
        assert reloaded.total_instructions == tiny_trace.total_instructions

    def test_reloaded_trace_usable(self, tmp_path, tiny_spec, tiny_trace, camino, machine):
        path = tmp_path / "trace.npz"
        save_trace(tiny_trace, path)
        reloaded = load_trace(path)
        exe_a = camino.build(tiny_spec, tiny_trace, layout_seed=1)
        exe_b = camino.build(tiny_spec, reloaded, layout_seed=1)
        assert exe_a.fingerprint == exe_b.fingerprint
        counts_a = machine._oracle_counts(exe_a)
        counts_b = machine._oracle_counts(exe_b)
        assert counts_a == counts_b

    def test_missing_trace_file(self, tmp_path):
        with pytest.raises(ReproError):
            load_trace(tmp_path / "nope.npz")
